"""Tests for the synthetic microbenchmark generators."""

from __future__ import annotations

import numpy as np

from repro.workloads.synthetic import (
    PAPER_EXAMPLE_EPOCHS,
    paper_example_trace,
    pointer_chase,
    random_uniform,
    repeating_miss_loop,
    streaming,
)
from repro.workloads.templates import EPOCH_SPLIT_GAP


class TestRepeatingLoop:
    def test_sequence_recurs_exactly(self):
        trace = repeating_miss_loop(unique_lines=100, records=300)
        first = list(trace.addr[:100])
        second = list(trace.addr[100:200])
        assert first == second

    def test_epoch_grouping_gaps(self):
        trace = repeating_miss_loop(unique_lines=64, records=64, misses_per_epoch=4)
        gaps = list(trace.gap)
        for i, gap in enumerate(gaps):
            if i % 4 == 0:
                assert gap >= EPOCH_SPLIT_GAP
            else:
                assert gap < 64


class TestPointerChase:
    def test_all_serial(self):
        trace = pointer_chase(unique_lines=100, records=200)
        assert all(trace.serial)

    def test_ring_recurs(self):
        trace = pointer_chase(unique_lines=50, records=150)
        assert list(trace.addr[:50]) == list(trace.addr[50:100])


class TestStreaming:
    def test_unit_stride_per_stream(self):
        trace = streaming(streams=2, lines_per_stream=100, records=40)
        stream0 = trace.addr[::2]
        deltas = np.diff(stream0)
        assert (deltas == 64).all()


class TestRandomUniform:
    def test_isolated_epochs(self):
        trace = random_uniform(records=100)
        assert (trace.gap >= EPOCH_SPLIT_GAP).all()

    def test_mostly_unique(self):
        trace = random_uniform(region_lines=1 << 20, records=1000)
        assert trace.unique_lines() > 990


class TestPaperExample:
    def test_epoch_structure_constant(self):
        assert PAPER_EXAMPLE_EPOCHS == (("A", "B"), ("C", "D", "E"), ("F", "G"), ("H", "I"))

    def test_nine_letters_then_evictions(self):
        trace = paper_example_trace(iterations=2, eviction_lines=10)
        assert len(trace) == 2 * (9 + 10)
        letters = trace.meta.extra["letters"]
        assert len(letters) == 9
        # First nine records are A..I in epoch-grouped order.
        expected = [letters[ch] for ep in PAPER_EXAMPLE_EPOCHS for ch in ep]
        assert list(trace.addr[:9]) == expected

    def test_epoch_gaps_encode_grouping(self):
        trace = paper_example_trace(iterations=1, eviction_lines=0)
        gaps = list(trace.gap[:9])
        # Triggers: A(0), C(2), F(5), H(7).
        trigger_positions = {0, 2, 5, 7}
        for i, gap in enumerate(gaps):
            if i in trigger_positions:
                assert gap >= EPOCH_SPLIT_GAP
            else:
                assert gap < 64

    def test_eviction_lines_never_repeat(self):
        trace = paper_example_trace(iterations=2, eviction_lines=100)
        evict_addrs = [int(a) for a in trace.addr if a >= 0x6000_0000]
        assert len(evict_addrs) == len(set(evict_addrs)) == 200
