"""Tests for cross-process metrics aggregation and quantile estimation.

Two contracts from the observability PR: (1) ``MetricsRegistry.merge``
folds worker snapshots into a service-global registry without losing
counts (counters sum, gauges last-write + extremes, histograms merge
bucket-wise and reject mismatched bounds); (2) ``Histogram.quantile``
estimates percentiles from buckets closely enough to drive real latency
reporting — asserted against exact numpy percentiles on known
distributions, with error bounded by one bucket width.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.prometheus import render_prometheus


def _registry_with(counter=0, gauge=None, hist_values=(), buckets=(1, 2, 4, 8)):
    registry = MetricsRegistry()
    if counter:
        registry.counter("reqs").inc(counter)
    if gauge is not None:
        registry.gauge("depth").set(gauge)
    if hist_values:
        h = registry.histogram("lat", list(buckets))
        for v in hist_values:
            h.observe(v)
    return registry


class TestCounterMerge:
    def test_counters_sum(self):
        a = _registry_with(counter=3)
        a.merge(_registry_with(counter=5))
        assert a["reqs"].value == 8

    def test_merge_creates_missing_instruments(self):
        a = MetricsRegistry()
        a.merge(_registry_with(counter=5))
        assert a["reqs"].value == 5

    def test_merge_accepts_snapshot_dicts(self):
        a = _registry_with(counter=3)
        a.merge(_registry_with(counter=5).to_dict())
        assert a["reqs"].value == 8

    def test_kind_conflict_raises(self):
        a = MetricsRegistry()
        a.gauge("reqs")
        with pytest.raises(TypeError):
            a.merge(_registry_with(counter=5))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"x": {"type": "summary", "value": 1}})


class TestGaugeMerge:
    def test_last_write_wins_and_extremes_fold(self):
        a = MetricsRegistry()
        g = a.gauge("depth")
        g.set(10.0)
        g.set(2.0)
        b = MetricsRegistry()
        b.gauge("depth").set(5.0)
        a.merge(b)
        merged = a["depth"]
        assert merged.value == 5.0  # incoming value wins
        assert merged.min == 2.0
        assert merged.max == 10.0

    def test_sample_statistics_accumulate(self):
        a = _registry_with(gauge=4.0)
        a.merge(_registry_with(gauge=8.0))
        snap = a["depth"].to_dict()
        assert snap["samples"] == 2
        assert snap["mean"] == pytest.approx(6.0)

    def test_empty_gauge_snapshot_is_a_noop(self):
        a = _registry_with(gauge=4.0)
        b = MetricsRegistry()
        b.gauge("depth")  # registered, never set
        a.merge(b)
        assert a["depth"].value == 4.0
        assert a["depth"].to_dict()["samples"] == 1


class TestHistogramMerge:
    def test_bucket_wise_merge(self):
        a = _registry_with(hist_values=[1, 3, 9])
        a.merge(_registry_with(hist_values=[2, 3, 100]))
        merged = a["lat"].to_dict()
        assert merged["total"] == 6
        assert merged["overflow"] == 2  # 9 and 100 both exceed the 8 bound
        assert merged["min"] == 1
        assert merged["max"] == 100
        assert sum(merged["counts"]) + merged["overflow"] == 6

    def test_mismatched_buckets_rejected(self):
        a = _registry_with(hist_values=[1])
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(_registry_with(hist_values=[1], buckets=(1, 2, 4)))

    def test_merged_quantiles_match_pooled_observations(self):
        rng = np.random.default_rng(11)
        lots = rng.uniform(0, 8, size=500)
        buckets = [1, 2, 3, 4, 5, 6, 7, 8]
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in lots[:250]:
            a.histogram("lat", buckets).observe(float(v))
        for v in lots[250:]:
            b.histogram("lat", buckets).observe(float(v))
        pooled = Histogram("lat", buckets)
        for v in lots:
            pooled.observe(float(v))
        a.merge(b)
        for q in (0.5, 0.9, 0.99):
            assert a["lat"].quantile(q) == pytest.approx(pooled.quantile(q))

    def test_prefix_namespaces_incoming(self):
        a = MetricsRegistry()
        a.merge(_registry_with(counter=2), prefix="ebcp.")
        a.merge(_registry_with(counter=3), prefix="stream.")
        assert a["ebcp.reqs"].value == 2
        assert a["stream.reqs"].value == 3

    def test_from_dict_round_trips(self):
        h = Histogram("lat", [1, 2, 4, 8])
        for v in (0.5, 1.5, 3, 7, 20):
            h.observe(v)
        again = Histogram.from_dict("lat", h.to_dict())
        assert again.to_dict() == h.to_dict()


class TestQuantileEstimation:
    """Bucket-interpolated quantiles vs exact numpy percentiles."""

    def test_uniform_distribution_within_one_bucket_width(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 100.0, size=2_000)
        buckets = [float(b) for b in range(10, 101, 10)]
        h = Histogram("lat", buckets)
        for v in values:
            h.observe(float(v))
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            exact = float(np.percentile(values, q * 100))
            assert abs(h.quantile(q) - exact) <= 10.0, (
                f"q={q}: estimate {h.quantile(q):.2f} vs exact {exact:.2f}"
            )

    def test_exponential_tail_within_one_bucket_width(self):
        rng = np.random.default_rng(13)
        values = rng.exponential(scale=20.0, size=5_000)
        buckets = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0]
        h = Histogram("lat", buckets)
        for v in values:
            h.observe(float(v))
        for q, width in ((0.5, 15.0), (0.9, 25.0), (0.99, 150.0)):
            exact = float(np.percentile(values, q * 100))
            assert abs(h.quantile(q) - exact) <= width

    def test_overflow_quantile_interpolates_to_observed_max(self):
        h = Histogram("lat", [1.0, 2.0])
        for v in (10.0, 20.0, 30.0, 40.0):
            h.observe(v)  # everything in overflow
        assert h.quantile(1.0) == pytest.approx(40.0)
        assert 2.0 <= h.quantile(0.5) <= 40.0

    def test_clamped_to_observed_range(self):
        h = Histogram("lat", [10.0, 20.0])
        h.observe(12.0)
        h.observe(13.0)
        assert h.quantile(0.0) >= 12.0
        assert h.quantile(1.0) <= 13.0

    def test_empty_histogram_is_zero(self):
        assert Histogram("lat", [1.0]).quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", [1.0]).quantile(1.5)


class TestInstrumentMergeDicts:
    def test_counter_merge_dict(self):
        c = Counter("x")
        c.inc(2)
        c.merge_dict({"type": "counter", "value": 3})
        assert c.value == 5

    def test_gauge_merge_dict_folds_extremes(self):
        g = Gauge("x")
        g.set(1.0)
        g.merge_dict({"type": "gauge", "value": 9.0, "min": 0.5, "max": 9.0,
                      "samples": 2, "mean": 4.75})
        assert g.value == 9.0
        assert g.min == 0.5
        assert g.max == 9.0


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = _registry_with(counter=4, gauge=2.5)
        text = render_prometheus(registry)
        assert "# TYPE repro_reqs counter" in text
        assert "repro_reqs 4" in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2.5" in text

    def test_histogram_is_cumulative_and_ends_at_inf(self):
        registry = _registry_with(hist_values=[1, 1, 3, 9])
        text = render_prometheus(registry)
        lines = [l for l in text.splitlines() if l.startswith("repro_lat_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert lines[-1].startswith('repro_lat_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "repro_lat_count 4" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("ebcp.epoch-mlp total").inc()
        text = render_prometheus(registry)
        assert "repro_ebcp_epoch_mlp_total 1" in text

    def test_snapshot_dict_renders_like_registry(self):
        registry = _registry_with(counter=4, gauge=2.5, hist_values=[1, 5])
        assert render_prometheus(registry.to_dict()) == render_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
