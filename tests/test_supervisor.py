"""Tests for shard supervision: crash recovery, preload, live resize.

Three layers:

* **Unit** — :meth:`ResultCache.preload` warms a fresh cache's memory
  tier from a shared disk tier without touching the hit/miss counters
  (the mechanism a newcomer shard uses before it enters the ring).
* **Crash recovery** — SIGKILL a shard out from under a supervised
  fleet: the supervisor respawns it under the same shard id (new pid,
  ring untouched), clients ride out the window on retryable
  ``queue_full`` errors, and the reborn shard answers its old keys
  bit-identically — warm from the disk tier.
* **Live resize** — ``admin resize`` grows 2→4 (newcomers preloaded
  from the disk tier before entering the ring; only moved keys remap)
  and shrinks back 4→2 (victims drain, their request counts survive in
  the fleet aggregate), including a resize issued mid-sweep.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.engine.config import ProcessorConfig
from repro.parallel.jobs import JobSpec
from repro.prefetchers.registry import build_prefetcher
from repro.resilience.policy import ExecutionPolicy
from repro.service import (
    BackgroundService,
    ServiceClient,
    ServiceConfig,
    ShardedService,
)
from repro.service.cache import ResultCache
from repro.spec import SPEC_VERSION, SweepSpec, run_spec

RECORDS = 3_000
WORKLOAD = "pointer_chase"
POLICY = ExecutionPolicy(jobs=1)
HEARTBEAT_S = 0.25


def local_run(workload: str, prefetcher: str, records: int = RECORDS, seed: int = 7):
    return JobSpec(
        workload=workload,
        records=records,
        seed=seed,
        config=ProcessorConfig.scaled(),
        prefetcher=None if prefetcher == "none" else build_prefetcher(prefetcher),
        label=prefetcher,
    ).run()


def fleet(tmp_path, workers: int = 2, **kwargs) -> ShardedService:
    config = ServiceConfig(
        port=0, cache_entries=64, cache_dir=str(tmp_path / "tier")
    )
    return ShardedService(
        config=config,
        policy=POLICY,
        workers=workers,
        heartbeat_s=kwargs.pop("heartbeat_s", HEARTBEAT_S),
        **kwargs,
    )


def shard_rows(client: ServiceClient) -> dict:
    return {row["index"]: row for row in client.ping()["shards"]}


class TestCachePreload:
    def test_preload_warms_memory_without_counting_traffic(self, tmp_path):
        result = local_run(WORKLOAD, "none", records=1_000)
        key = ResultCache.key("trace-fp", (64, (4, 8)), "none", None)
        first = ResultCache(max_entries=8, spill_dir=tmp_path)
        first.put(key, result)

        reborn = ResultCache(max_entries=8, spill_dir=tmp_path)
        assert reborn.preload() == 1
        # Boot-time warming is not request traffic.
        assert reborn.hits == 0 and reborn.misses == 0 and reborn.disk_hits == 0
        got = reborn.get(key)
        assert got is not None and got.snapshot() == result.snapshot()
        # Answered from the memory tier, not re-read from disk.
        assert reborn.hits == 1 and reborn.disk_hits == 0

    def test_preload_honours_limit_and_quarantines_corruption(self, tmp_path):
        result = local_run(WORKLOAD, "none", records=1_000)
        cache = ResultCache(max_entries=8, spill_dir=tmp_path)
        keys = [
            ResultCache.key(f"trace-{i}", (1,), "none", None) for i in range(4)
        ]
        for key in keys:
            cache.put(key, result)
        cache.entry_path(keys[0]).write_text("not json", encoding="utf-8")
        # Pin recency so the tampered entry is the oldest on disk.
        for i, key in enumerate(keys):
            os.utime(cache.entry_path(key), (1_000_000 + i,) * 2)

        reborn = ResultCache(max_entries=8, spill_dir=tmp_path)
        # The two newest entries fit the budget; the corrupt one is
        # outside the window and untouched.
        assert reborn.preload(limit=2) == 2
        assert reborn.quarantined == 0

        fresh = ResultCache(max_entries=8, spill_dir=tmp_path)
        loaded = fresh.preload()
        # The tampered entry fails its sidecar check and is quarantined.
        assert loaded == 3 and fresh.quarantined == 1
        assert (tmp_path / "quarantine").exists()

    def test_preload_without_disk_tier_is_a_noop(self):
        assert ResultCache(max_entries=8).preload() == 0


class TestCrashRecovery:
    def test_sigkill_respawn_same_shard_new_pid(self, tmp_path):
        service = fleet(tmp_path, workers=2)
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            with ServiceClient(
                *svc.address, timeout_s=120.0, retries=12, backoff_s=0.1
            ) as client:
                ping = client.ping()
                assert ping["supervised"] is True
                assert ping["heartbeat_s"] == HEARTBEAT_S
                assert all(r["state"] == "ready" for r in ping["shards"])

                served = client.simulate(WORKLOAD, "none", records=RECORDS, seed=11)
                victim = served.shard["index"]
                victim_pid = served.shard["pid"]
                os.kill(victim_pid, signal.SIGKILL)

                deadline = time.monotonic() + 60.0
                row = None
                while time.monotonic() < deadline:
                    row = shard_rows(client)[victim]
                    if row["state"] == "ready" and row["pid"] != victim_pid:
                        break
                    time.sleep(0.1)
                assert row is not None and row["pid"] != victim_pid, (
                    f"shard {victim} was not respawned: {row}"
                )
                assert row["restarts"] == 1

                # Same key, same shard id (ring untouched), fresh pid —
                # and the answer comes warm from the shared disk tier.
                again = client.simulate(WORKLOAD, "none", records=RECORDS, seed=11)
                assert again.shard["index"] == victim
                assert again.shard["pid"] != victim_pid
                assert again.cached is True
                assert again.result.to_dict() == served.result.to_dict()

                stats_row = {
                    r["index"]: r for r in client.stats()["shards"]
                }[victim]
                assert stats_row["restarts"] == 1
                assert stats_row["cache"]["disk"]["hits"] >= 1

                text = client.metrics()
                assert "repro_router_restarts_total 1" in text
        for shard in service.shards:
            assert not shard.process.is_alive()

    def test_unsupervised_fleet_keeps_legacy_errors(self, tmp_path):
        service = fleet(tmp_path, workers=2, heartbeat_s=0.0)
        assert service.supervisor.enabled is False
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=0) as client:
                assert client.ping()["supervised"] is False


class TestLiveResize:
    def test_grow_then_shrink_moves_only_resized_keys(self, tmp_path):
        service = fleet(tmp_path, workers=2)
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=2) as client:
                seeds = range(6)
                before = {}
                for seed in seeds:
                    served = client.simulate(
                        WORKLOAD, "none", records=RECORDS, seed=seed
                    )
                    before[seed] = (served.shard["index"], served.result.to_dict())

                report = client.resize(4)
                assert report["previous_workers"] == 2
                assert report["workers"] == 4
                assert report["added"] == [2, 3]
                assert report["removed"] == []
                rows = shard_rows(client)
                assert sorted(rows) == [0, 1, 2, 3]
                assert len({r["pid"] for r in rows.values()}) == 4

                moved = 0
                for seed in seeds:
                    served = client.simulate(
                        WORKLOAD, "none", records=RECORDS, seed=seed
                    )
                    owner, result = before[seed]
                    assert served.result.to_dict() == result
                    # Newcomers warmed from the disk tier pre-ring, so
                    # even moved keys answer from cache.
                    assert served.cached is True
                    if served.shard["index"] != owner:
                        assert served.shard["index"] in (2, 3)
                        moved += 1

                report = client.resize(2)
                assert report["workers"] == 2
                assert report["added"] == []
                assert report["removed"] == [2, 3]
                rows = shard_rows(client)
                assert sorted(rows) == [0, 1]

                # Keys served by the retired shards come home; results
                # are still bit-identical.
                for seed in seeds:
                    served = client.simulate(
                        WORKLOAD, "none", records=RECORDS, seed=seed
                    )
                    assert served.shard["index"] in (0, 1)
                    assert served.result.to_dict() == before[seed][1]

                # Retired shards' request counts survive in the fleet
                # aggregate: every simulate above is accounted for.
                stats = client.stats()
                assert stats["workers"] == 2
                assert stats["metrics"]["requests_received"]["value"] >= 18
                text = client.metrics()
                assert "repro_router_resizes_total 2" in text

    def test_resize_validation(self, tmp_path):
        from repro.service import ServiceError

        service = fleet(tmp_path, workers=2)
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=0) as client:
                with pytest.raises(ServiceError):
                    client.resize(0)
                with pytest.raises(ServiceError):
                    client.admin("defragment")
                # A no-op resize reports and changes nothing.
                report = client.resize(2)
                assert report["workers"] == 2
                assert report["added"] == [] and report["removed"] == []

    def test_single_process_service_rejects_admin(self):
        from repro.service import ServiceError

        with BackgroundService(
            ServiceConfig(port=0), policy=POLICY, start_timeout_s=120.0
        ) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=0) as client:
                with pytest.raises(ServiceError):
                    client.resize(2)


class TestMidSweepResize:
    def sweep_spec(self) -> SweepSpec:
        return SweepSpec.from_dict(
            {
                "version": SPEC_VERSION,
                "name": "resize_identity",
                "workloads": [WORKLOAD],
                "grid": {"records": RECORDS, "seeds": [1, 2, 3]},
                "prefetchers": [
                    {"name": "ebcp", "label": "d4",
                     "overrides": {"prefetch_degree": 4}},
                    {"name": "stream", "label": "stream"},
                ],
            }
        )

    def test_sweep_bit_identical_across_resize(self, tmp_path):
        spec = self.sweep_spec()
        local = run_spec(spec, policy=POLICY)
        service = fleet(tmp_path, workers=2)
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=2) as client:
                frames = []
                resized: "list[dict]" = []

                def resize_mid_sweep():
                    with ServiceClient(
                        *svc.address, timeout_s=120.0, retries=2
                    ) as admin:
                        resized.append(admin.resize(3))

                resizer = None
                for frame in client.iter_sweep(spec):
                    if frame.done:
                        assert frame.summary["errors"] == 0
                        continue
                    frames.append(frame)
                    if resizer is None:
                        # First completed job: grow the ring while the
                        # remaining jobs are still streaming.
                        resizer = threading.Thread(target=resize_mid_sweep)
                        resizer.start()
                resizer.join(timeout=120.0)
                assert resized and resized[0]["workers"] == 3

                frames.sort(key=lambda f: f.index)
                assert len(frames) == len(local.results)
                for frame, ours in zip(frames, local.results):
                    assert frame.result.snapshot() == ours.snapshot()
