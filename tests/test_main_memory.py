"""Tests for the DRAM model and its page allocator."""

from __future__ import annotations

import pytest

from repro.memory.main_memory import MainMemory, OutOfMemoryError


class TestAllocation:
    def test_allocation_rounds_to_pages(self):
        memory = MainMemory(size_bytes=1 << 20, page_bytes=4096)
        alloc = memory.allocate(5000)
        assert alloc.size == 8192
        assert alloc.base % 4096 == 0

    def test_allocations_disjoint(self):
        memory = MainMemory(size_bytes=1 << 20, page_bytes=4096)
        a = memory.allocate(4096)
        b = memory.allocate(4096)
        assert a.end <= b.base

    def test_out_of_memory(self):
        memory = MainMemory(size_bytes=8192, page_bytes=4096)
        memory.allocate(8192)
        with pytest.raises(OutOfMemoryError):
            memory.allocate(1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            MainMemory().allocate(0)

    def test_free_and_allocated_bytes(self):
        memory = MainMemory(size_bytes=1 << 20, page_bytes=4096)
        memory.allocate(4096)
        assert memory.allocated_bytes == 4096
        assert memory.free_bytes == (1 << 20) - 4096


class TestReclaim:
    def test_reclaim_removes_from_live_set(self):
        memory = MainMemory(size_bytes=1 << 20)
        alloc = memory.allocate(8192)
        memory.reclaim(alloc)
        assert memory.allocated_bytes == 0
        assert memory.owns(alloc.base) is None

    def test_reclaim_unknown_raises(self):
        memory = MainMemory(size_bytes=1 << 20)
        alloc = memory.allocate(8192)
        memory.reclaim(alloc)
        with pytest.raises(ValueError):
            memory.reclaim(alloc)


class TestOwnership:
    def test_owns(self):
        memory = MainMemory(size_bytes=1 << 20, page_bytes=4096)
        alloc = memory.allocate(4096)
        assert memory.owns(alloc.base) == alloc
        assert memory.owns(alloc.end - 1) == alloc
        assert memory.owns(alloc.end) is None

    def test_allocation_contains(self):
        memory = MainMemory(size_bytes=1 << 20)
        alloc = memory.allocate(8192)
        assert alloc.contains(alloc.base)
        assert not alloc.contains(alloc.base - 1)


class TestValidation:
    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            MainMemory(latency_cycles=0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            MainMemory(page_bytes=3000)
