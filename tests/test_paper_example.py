"""Integration tests reproducing the paper's Section 3 worked example.

The paper walks the miss sequence A..I, grouped into epochs
(A,B)(C,D,E)(F,G)(H,I), through its prefetchers:

* **EBCP (main-memory table, Section 3.2)**: the lookup keyed by A is
  hidden under epoch i; prefetches issue in epoch i+1 and avert F, G, H
  and I — the sequence completes in **2 epochs** with misses A,B,C,D,E.
* **Solihin's scheme (Section 3.3.1)**: every miss reads its successors
  from the memory table, but the recorded successors belong to the same
  or next epoch and arrive too late; only **H** is averted and **4
  epochs** remain.

These tests run the actual trace through the actual simulator and assert
the steady-state per-iteration outcomes letter-for-letter against the
paper's tables, using the simulator's observation hooks.  The paper
considers each recurrence in isolation — stale prefetches from one
occurrence do not survive the "sufficiently long period of time" to the
next — so the harness flushes the prefetch buffer once per eviction
phase (in a real workload, competing prefetch traffic churns the
64-entry buffer in a few hundred cycles).
"""

from __future__ import annotations

import pytest

from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.memory.hierarchy import AccessOutcome
from repro.obs import AccessResolved, EventBus
from repro.prefetchers.solihin import SolihinPrefetcher
from repro.workloads.synthetic import paper_example_trace

ITERATIONS = 24
EVICT_LINES = 600  # flushes the 256-line L2 between iterations
STEADY_FROM = 8  # analyse iterations once everything is trained

LETTERS = "ABCDEFGHI"


def example_config() -> ProcessorConfig:
    return ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )


def run_example(prefetcher):
    """Run the example; returns (result, per-iteration letter outcomes,
    per-iteration letter-epoch counts)."""
    trace = paper_example_trace(iterations=ITERATIONS, eviction_lines=EVICT_LINES)
    letters = trace.meta.extra["letters"]
    line_to_letter = {addr >> 6: letter for letter, addr in letters.items()}

    bus = EventBus()
    sim = EpochSimulator(example_config(), prefetcher, bus=bus)
    outcomes: list[tuple[str, AccessOutcome]] = []
    state = {"flushed": True}

    def on_access(event: AccessResolved) -> None:
        if event.line in line_to_letter:
            outcomes.append((line_to_letter[event.line], event.result.outcome))
            state["flushed"] = False
        elif not state["flushed"]:
            # First eviction access of the iteration: discard the
            # occurrence's leftover (stale) prefetches, as the paper's
            # isolated-recurrence framing assumes.
            sim.hierarchy.prefetch_buffer.flush()
            state["flushed"] = True

    bus.subscribe(AccessResolved, on_access)
    result = sim.run(trace, warmup_records=0)

    per_iter = [outcomes[i * 9 : (i + 1) * 9] for i in range(ITERATIONS)]
    return result, per_iter


def steady_outcomes(per_iter) -> list[dict[str, AccessOutcome]]:
    steady = []
    for iteration in per_iter[STEADY_FROM:ITERATIONS]:
        assert len(iteration) == 9
        steady.append({letter: outcome for letter, outcome in iteration})
    return steady


class TestBaseline:
    def test_all_nine_letters_miss_every_iteration(self):
        _, per_iter = run_example(None)
        for snapshot in steady_outcomes(per_iter):
            for letter in LETTERS:
                assert snapshot[letter] is AccessOutcome.OFFCHIP_MISS


class TestEBCP:
    def make(self):
        return EpochBasedCorrelationPrefetcher(
            EBCPConfig(prefetch_degree=8, table_entries=64 * 1024)
        )

    def test_section_3_2_table(self):
        """A,B,C,D,E miss; F,G,H,I averted -> two epochs remain."""
        _, per_iter = run_example(self.make())
        snapshots = steady_outcomes(per_iter)
        averted = {"F", "G", "H", "I"}
        good = 0
        for snapshot in snapshots:
            if all(snapshot[x] is AccessOutcome.PREFETCH_HIT for x in averted) and all(
                snapshot[x] is AccessOutcome.OFFCHIP_MISS for x in "ABCDE"
            ):
                good += 1
        # Steady state must match the paper's table in (nearly) every
        # iteration; allow a couple of buffer-conflict flukes.
        assert good >= len(snapshots) - 2


class TestSolihin:
    def make(self):
        return SolihinPrefetcher(depth=3, width=2, table_entries=64 * 1024, degree=6)

    def test_section_3_3_1_table(self):
        """A..G can never be timely; at most one late-epoch miss (H in
        the paper's one-shot table) is averted, leaving four epochs.

        The closed-loop simulation adds one effect the paper's one-shot
        table cannot show: once H is averted it disappears from the
        memory-side engine's observable stream, so the trained successor
        shifts between H and I across iterations.  Either way at most one
        of the last epoch's misses is averted and the epoch survives.
        """
        _, per_iter = run_example(self.make())
        snapshots = steady_outcomes(per_iter)
        # The paper's core timing claim: B..G (and A) can never be
        # prefetched in time by the memory-side scheme.
        for snapshot in snapshots:
            for letter in "ABCDEFG":
                assert snapshot[letter] is AccessOutcome.OFFCHIP_MISS
        # Around one of the final epoch's misses is averted per
        # iteration (the paper's H; the closed loop flips between H/I and
        # occasionally catches both).
        total_tail_hits = sum(
            snapshot[x] is AccessOutcome.PREFETCH_HIT
            for snapshot in snapshots
            for x in "HI"
        )
        assert 0.3 * len(snapshots) <= total_tail_hits <= 1.6 * len(snapshots)


class TestHeadToHead:
    def test_ebcp_removes_more_epochs_than_solihin(self):
        base, base_iter = run_example(None)
        ebcp, ebcp_iter = run_example(
            EpochBasedCorrelationPrefetcher(
                EBCPConfig(prefetch_degree=8, table_entries=64 * 1024)
            )
        )
        solihin, sol_iter = run_example(
            SolihinPrefetcher(depth=3, width=2, table_entries=64 * 1024, degree=6)
        )

        def steady_misses(per_iter):
            return sum(
                1
                for snapshot in steady_outcomes(per_iter)
                for outcome in snapshot.values()
                if outcome is AccessOutcome.OFFCHIP_MISS
            )

        n = ITERATIONS - STEADY_FROM
        assert steady_misses(base_iter) == 9 * n
        assert steady_misses(ebcp_iter) <= 5 * n + 4
        assert steady_misses(sol_iter) >= 8 * n - n // 2
