"""Tests for the sharded service tier: ring, routing, multi-process.

Two layers:

* **Unit/property** — the consistent-hash ring's contract, pinned with
  Hypothesis: routing is deterministic and insertion-order independent,
  adding a shard only steals keys *for the new shard* (never reshuffles
  between survivors), removing one only moves the removed shard's keys,
  and the keyspace stays tolerably balanced.
* **Integration** — a real :class:`ShardedService` front-end over two
  worker processes: requests fan out to distinct pids, served results
  stay bit-identical to local runs, repeats hit the owning shard's
  cache, stats aggregate across the fleet, and the whole thing drains
  gracefully.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import ProcessorConfig
from repro.parallel.jobs import JobSpec
from repro.prefetchers.registry import build_prefetcher
from repro.resilience.policy import ExecutionPolicy
from repro.service import (
    BackgroundService,
    HashRing,
    ServiceClient,
    ServiceConfig,
    ShardedService,
    routing_key,
)

RECORDS = 4_000
WORKLOAD = "pointer_chase"
POLICY = ExecutionPolicy(jobs=1)

shard_names = st.lists(
    st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12),
    min_size=1,
    max_size=6,
    unique=True,
)
keys = st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=64)


def local_run(workload: str, prefetcher: str, records: int = RECORDS, seed: int = 7):
    return JobSpec(
        workload=workload,
        records=records,
        seed=seed,
        config=ProcessorConfig.scaled(),
        prefetcher=None if prefetcher == "none" else build_prefetcher(prefetcher),
        label=prefetcher,
    ).run()


class TestRoutingKey:
    def test_deterministic(self):
        fp = ProcessorConfig.scaled().fingerprint()
        assert routing_key("tpcw", 50_000, 7, fp) == routing_key("tpcw", 50_000, 7, fp)

    def test_distinct_parameters_distinct_keys(self):
        fp = ProcessorConfig.scaled().fingerprint()
        base = routing_key("tpcw", 50_000, 7, fp)
        assert routing_key("tpcw", 50_000, 8, fp) != base
        assert routing_key("tpcw", 50_001, 7, fp) != base
        assert routing_key("database", 50_000, 7, fp) != base

    def test_prefetcher_not_part_of_the_key(self):
        # Every prefetcher variant of one trace must share a shard, so
        # the routing key has no prefetcher dimension at all.
        fp = ProcessorConfig.scaled().fingerprint()
        ring = HashRing(["shard-0", "shard-1", "shard-2", "shard-3"])
        key = routing_key(WORKLOAD, RECORDS, 7, fp)
        assert ring.route(key) == ring.route(routing_key(WORKLOAD, RECORDS, 7, fp))

    def test_nested_tuple_fingerprint_is_jsonable(self):
        key = routing_key("tpcw", 1, 2, (3.0, (4, (5, 6))))
        assert isinstance(key, str) and "5" in key


class TestHashRingBasics:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().route("anything")

    def test_membership_and_len(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.shards() == ("a", "b")

    def test_add_is_idempotent(self):
        ring = HashRing(["a"])
        before = list(ring._points)
        ring.add("a")
        assert ring._points == before

    def test_remove_unknown_is_noop(self):
        ring = HashRing(["a"])
        ring.remove("b")
        assert ring.shards() == ("a",)

    def test_replicas_validation(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        with pytest.raises(ValueError):
            HashRing([""])

    def test_balance_over_many_keys(self):
        # Deterministic (blake2b): 4 shards x 64 replicas over 4000 keys
        # must spread within a small factor of the fair share.
        ring = HashRing([f"shard-{i}" for i in range(4)])
        counts = {name: 0 for name in ring.shards()}
        for i in range(4_000):
            counts[ring.route(f"key-{i}")] += 1
        fair = 4_000 / 4
        assert min(counts.values()) > fair / 2.5
        assert max(counts.values()) < fair * 2.5


class TestHashRingProperties:
    @given(shards=shard_names, ks=keys)
    @settings(max_examples=60, deadline=None)
    def test_routing_is_insertion_order_independent(self, shards, ks):
        forward = HashRing(shards)
        backward = HashRing(reversed(shards))
        for key in ks:
            assert forward.route(key) == backward.route(key)

    @given(shards=shard_names, ks=keys, new=st.text(alphabet="xyz", min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_adding_a_shard_only_steals_for_itself(self, shards, ks, new):
        # THE consistent-hashing property: growing the ring never
        # reshuffles keys between existing shards — a moved key moved to
        # the newcomer, so N-1 of N shard caches stay warm on resize.
        if new in shards:
            return
        ring = HashRing(shards)
        before = {key: ring.route(key) for key in ks}
        ring.add(new)
        for key in ks:
            after = ring.route(key)
            assert after == before[key] or after == new

    @given(shards=shard_names, ks=keys)
    @settings(max_examples=60, deadline=None)
    def test_removing_a_shard_only_moves_its_keys(self, shards, ks):
        if len(shards) < 2:
            return
        ring = HashRing(shards)
        victim = shards[0]
        before = {key: ring.route(key) for key in ks}
        ring.remove(victim)
        for key in ks:
            if before[key] != victim:
                assert ring.route(key) == before[key]
            else:
                assert ring.route(key) != victim

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_remapping_fraction_tracks_fair_share(self, n):
        # Quantitative cousin of the structural property above: growing
        # an N-shard ring moves ~1/(N+1) of the keyspace to the
        # newcomer — not ~(N-1)/N as naive modulo hashing would.
        # Deterministic (blake2b), so tight-ish bounds are CI-safe.
        ring = HashRing([f"shard-{i}" for i in range(n)])
        ks = [f"key-{i}" for i in range(2_000)]
        before = {key: ring.route(key) for key in ks}
        ring.add("newcomer-x")
        moved = sum(1 for key in ks if ring.route(key) != before[key])
        fair = 1 / (n + 1)
        assert fair / 2 <= moved / len(ks) <= fair * 2

    @given(
        ks=keys,
        ops=st.lists(
            st.tuples(st.booleans(), st.sampled_from("uvwxyz")),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_mutation_moves_only_the_touched_shards_keys(self, ks, ops):
        # Live resize interleaves add() and remove() on a serving ring.
        # After EVERY step — not just at a quiescent end state — a key
        # either kept its owner, moved TO the shard just added, or moved
        # FROM the shard just removed.  Any other movement would cold-miss
        # a surviving shard's cache mid-resize.
        ring = HashRing(["shard-0", "shard-1"])
        members = {"shard-0", "shard-1"}
        owners = {key: ring.route(key) for key in ks}
        for add, name in ops:
            if add:
                if name in members:
                    continue
                ring.add(name)
                members.add(name)
                for key in ks:
                    after = ring.route(key)
                    assert after == owners[key] or after == name
                    owners[key] = after
            else:
                if name not in members or len(members) == 1:
                    continue
                ring.remove(name)
                members.remove(name)
                for key in ks:
                    after = ring.route(key)
                    if owners[key] == name:
                        assert after != name
                    else:
                        assert after == owners[key]
                    owners[key] = after

    @given(ks=keys)
    @settings(max_examples=40, deadline=None)
    def test_add_then_remove_restores_routing(self, ks):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        before = {key: ring.route(key) for key in ks}
        ring.add("transient")
        ring.remove("transient")
        assert {key: ring.route(key) for key in ks} == before


@pytest.fixture(scope="module")
def sharded():
    """One 2-shard service shared by the integration tests (spawn cost)."""
    config = ServiceConfig(port=0, cache_entries=64)
    service = ShardedService(config=config, policy=POLICY, workers=2)
    with BackgroundService(service=service, start_timeout_s=120.0) as svc:
        yield svc


@pytest.fixture
def client(sharded):
    with ServiceClient(*sharded.address, timeout_s=120.0, retries=0) as c:
        yield c


class TestShardedService:
    def test_ping_describes_the_fleet(self, client):
        payload = client.ping()
        assert payload["sharded"] is True
        assert payload["workers"] == 2
        assert len(payload["shards"]) == 2
        pids = {shard["pid"] for shard in payload["shards"]}
        assert len(pids) == 2  # two real processes

    def test_requests_land_on_distinct_pids(self, client):
        pids = set()
        for seed in range(8):
            served = client.simulate(WORKLOAD, "none", records=RECORDS, seed=seed)
            assert served.shard is not None
            pids.add(served.shard["pid"])
        assert len(pids) == 2

    def test_served_result_is_bit_identical(self, client):
        served = client.simulate(WORKLOAD, "ebcp", records=RECORDS, seed=3)
        local = local_run(WORKLOAD, "ebcp", seed=3)
        assert dataclasses.asdict(served.result.stats) == dataclasses.asdict(local.stats)

    def test_repeat_hits_the_owning_shards_cache(self, client):
        first = client.simulate(WORKLOAD, "none", records=RECORDS, seed=101)
        second = client.simulate(WORKLOAD, "none", records=RECORDS, seed=101)
        assert first.cached is False and second.cached is True
        # Locality: the repeat landed on the very same shard process.
        assert second.shard == first.shard
        assert second.result.to_dict() == first.result.to_dict()

    def test_prefetcher_variants_share_a_shard(self, client):
        a = client.simulate(WORKLOAD, "none", records=RECORDS, seed=55)
        b = client.simulate(WORKLOAD, "ebcp", records=RECORDS, seed=55)
        assert a.shard == b.shard

    def test_stats_aggregate_and_break_down(self, client):
        client.simulate(WORKLOAD, "none", records=RECORDS, seed=200)
        stats = client.stats()
        assert stats["sharded"] is True and stats["workers"] == 2
        assert stats["metrics"]["requests_received"]["value"] >= 1
        assert stats["router"]["router_requests_routed"]["value"] >= 1
        shard_rows = stats["shards"]
        assert len(shard_rows) == 2
        assert {row["index"] for row in shard_rows} == {0, 1}
        # The aggregate equals the sum of the per-shard requests.
        total = sum(row["requests"] for row in shard_rows)
        assert stats["metrics"]["requests_received"]["value"] == total

    def test_prometheus_metrics_cover_router_and_shards(self, client):
        client.simulate(WORKLOAD, "none", records=RECORDS, seed=201)
        text = client.metrics()
        assert "repro_router_requests_routed" in text
        assert "repro_shard0_requests_received" in text
        assert "repro_shard1_requests_received" in text

    def test_telemetry_spans_cross_processes(self, client):
        from repro.obs import SpanRecorder

        recorder = SpanRecorder("client")
        traced = ServiceClient(
            client.host, client.port, timeout_s=120.0, retries=0, recorder=recorder
        )
        with traced:
            served = traced.simulate(WORKLOAD, "none", records=RECORDS, seed=777)
        telemetry = client.telemetry()
        spans = telemetry["spans"]
        names = {span["name"] for span in spans}
        assert "router:route" in names
        assert "server:simulate" in names
        # The routing span and the shard's span share the client trace
        # and the shard span ran in the pid the response reported.
        trace_id = recorder.spans[0]["trace_id"]
        routed = [s for s in spans if s["trace_id"] == trace_id]
        assert {s["name"] for s in routed} >= {"router:route", "server:simulate"}
        shard_pids = {
            s["pid"] for s in routed if s["name"] == "server:simulate"
        }
        assert served.shard["pid"] in shard_pids


class TestShardedDrain:
    def test_shutdown_drains_both_shards(self):
        config = ServiceConfig(port=0, cache_entries=8, drain_timeout_s=30.0)
        service = ShardedService(config=config, policy=POLICY, workers=2)
        with BackgroundService(service=service, start_timeout_s=120.0) as svc:
            with ServiceClient(*svc.address, timeout_s=120.0, retries=0) as c:
                c.simulate(WORKLOAD, "none", records=RECORDS)
                assert c.shutdown() == {"draining": True}
        # The context exit joined the service thread; the shard
        # processes must be gone too, and their telemetry absorbed.
        for shard in service.shards:
            assert not shard.process.is_alive()
        merged = service.merged_metrics()
        assert merged["requests_received"]["value"] >= 1
        assert "shard0.requests_received" in merged
        assert "shard1.requests_received" in merged
