"""Tests for the analysis layer: metrics, reporting, sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    compare_to_baseline,
    epi_reduction,
    geometric_mean,
    improvement,
    miss_rate_split,
)
from repro.analysis.reporting import banner, format_percent, format_series, format_table
from repro.analysis.sweep import SweepRunner
from repro.engine.config import ProcessorConfig
from repro.engine.stats import SimulationResult, SimulationStats
from repro.memory.request import AccessKind
from repro.prefetchers.none import NoPrefetcher


def result_with(cpi_offchip_cycles: float, epochs=100, workload="w", prefetcher="p"):
    stats = SimulationStats(
        instructions=100_000, epochs=epochs, offchip_cycles=cpi_offchip_cycles
    )
    return SimulationResult(workload, prefetcher, stats, cpi_perf=1.0, overlap=0.0)


class TestMetrics:
    def test_improvement_and_epi_reduction(self):
        base = result_with(300_000.0, epochs=600)
        cand = result_with(200_000.0, epochs=400)
        assert improvement(base, cand) == pytest.approx(4.0 / 3.0 - 1.0)
        assert epi_reduction(base, cand) == pytest.approx(1 / 3)

    def test_miss_rate_split(self):
        res = result_with(0.0)
        res.stats.offchip_misses[AccessKind.IFETCH] = 200
        res.stats.offchip_misses[AccessKind.LOAD] = 400
        split = miss_rate_split(res)
        assert split["inst"] == pytest.approx(2.0)
        assert split["load"] == pytest.approx(4.0)
        assert split["store"] == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_compare_to_baseline(self):
        base = result_with(300_000.0)
        cand = result_with(150_000.0)
        rows = compare_to_baseline({"w": base}, [cand])
        assert len(rows) == 1
        assert rows[0].improvement == pytest.approx(4.0 / 2.5 - 1.0)
        assert rows[0].workload == "w" and rows[0].prefetcher == "p"


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.234) == "+23.4 %"
        assert format_percent(-0.05) == "-5.0 %"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_series(self):
        text = format_series("deg", [1, 2], {"db": [0.1, 0.2]}, value_format="+.1%")
        assert "+10.0%" in text and "+20.0%" in text

    def test_format_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [0.1]})

    def test_banner(self):
        text = banner("hello")
        assert text.splitlines()[1] == "hello"


class TestSweepRunner:
    def test_baseline_cached_per_config(self):
        runner = SweepRunner(records=4000, workloads=("pointer_chase",))
        # pointer_chase is synthetic: trace() must still work through the
        # registry.
        config = ProcessorConfig.scaled()
        a = runner.baseline("pointer_chase", config)
        b = runner.baseline("pointer_chase", config)
        assert a is b

    def test_run_point_improvement_sign(self):
        runner = SweepRunner(records=4000, workloads=("pointer_chase",))
        config = ProcessorConfig.scaled()
        point = runner.run_point("pointer_chase", config, NoPrefetcher(), "none")
        assert point.improvement == pytest.approx(0.0, abs=1e-9)

    def test_sweep_requires_exactly_one_config_source(self):
        runner = SweepRunner(records=1000, workloads=("pointer_chase",))
        with pytest.raises(ValueError):
            runner.sweep(["a"], lambda label: NoPrefetcher())
        with pytest.raises(ValueError):
            runner.sweep(
                ["a"],
                lambda label: NoPrefetcher(),
                config=ProcessorConfig.scaled(),
                config_factory=lambda label: ProcessorConfig.scaled(),
            )

    def test_sweep_grid_shape(self):
        runner = SweepRunner(records=3000, workloads=("pointer_chase", "random_uniform"))
        grid = runner.sweep(
            ["x", "y"],
            lambda label: NoPrefetcher(),
            config=ProcessorConfig.scaled(),
        )
        assert set(grid) == {"pointer_chase", "random_uniform"}
        assert [p.label for p in grid["pointer_chase"]] == ["x", "y"]
