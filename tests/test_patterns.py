"""Tests for address regions and pattern helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.patterns import Region, RegionAllocator, spatial_page_lines


class TestRegion:
    def test_geometry(self):
        region = Region("r", base=0x1000, lines=16)
        assert region.size_bytes == 1024
        assert region.end == 0x1400
        assert region.line_addr(0) == 0x1000
        assert region.line_addr(15) == 0x1000 + 15 * 64

    def test_line_addr_bounds(self):
        region = Region("r", base=0, lines=4)
        with pytest.raises(IndexError):
            region.line_addr(4)
        with pytest.raises(IndexError):
            region.line_addr(-1)

    def test_contains(self):
        region = Region("r", base=0x1000, lines=2)
        assert region.contains(0x1000)
        assert region.contains(0x107F)
        assert not region.contains(0x1080)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            Region("r", base=100, lines=4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Region("r", base=0, lines=0)


class TestSampling:
    def test_sample_distinct(self):
        region = Region("r", base=0, lines=100)
        rng = np.random.default_rng(1)
        lines = region.sample_lines(rng, 50, distinct=True)
        assert len(set(lines)) == 50
        assert all(region.contains(addr) for addr in lines)
        assert all(addr % 64 == 0 for addr in lines)

    def test_sample_with_replacement_when_over(self):
        region = Region("r", base=0, lines=4)
        rng = np.random.default_rng(1)
        lines = region.sample_lines(rng, 10, distinct=True)
        assert len(lines) == 10  # falls back to replacement

    def test_sequential(self):
        region = Region("r", base=0x1000, lines=16)
        lines = region.sequential_lines(2, 3)
        assert lines == [0x1000 + 2 * 64, 0x1000 + 3 * 64, 0x1000 + 4 * 64]

    def test_sequential_bounds(self):
        region = Region("r", base=0, lines=4)
        with pytest.raises(IndexError):
            region.sequential_lines(2, 3)

    def test_spatial_page_lines_within_one_page(self):
        region = Region("r", base=0, lines=1024)
        rng = np.random.default_rng(2)
        lines = spatial_page_lines(region, rng, 8, page_bytes=2048)
        pages = {addr // 2048 for addr in lines}
        assert len(pages) == 1
        assert len(set(lines)) == 8

    def test_spatial_page_lines_capped_at_page(self):
        region = Region("r", base=0, lines=1024)
        rng = np.random.default_rng(3)
        lines = spatial_page_lines(region, rng, 100, page_bytes=2048)
        assert len(lines) == 2048 // 64


class TestAllocator:
    def test_regions_disjoint_with_guard(self):
        alloc = RegionAllocator(base=0x1000, guard_bytes=4096)
        a = alloc.allocate("a", 16)
        b = alloc.allocate("b", 16)
        assert b.base >= a.end + 4096 - 64  # guard, modulo line alignment
        assert alloc["a"] is a and alloc["b"] is b

    def test_duplicate_name_rejected(self):
        alloc = RegionAllocator()
        alloc.allocate("a", 4)
        with pytest.raises(ValueError):
            alloc.allocate("a", 4)

    def test_bases_line_aligned(self):
        alloc = RegionAllocator(base=0x1000, guard_bytes=100)
        alloc.allocate("a", 3)
        b = alloc.allocate("b", 3)
        assert b.base % 64 == 0
