"""Tests for the epoch-batched EBCP execution kernel.

The load-bearing claims verified here:

* the kernel produces field-for-field identical ``SimulationStats`` to
  the scalar reference path (``REPRO_KERNEL=off``) on every workload
  family and EBCP variant,
* identity holds on *adversarial* randomized miss streams — tiny cache
  geometries that conflict hard, EMAB overflow, correlation-table
  aliasing, MSHR exhaustion and warm-up boundaries in arbitrary places —
  and extends to the post-run state of every simulator object (so a
  subsequent scalar run continues identically),
* the default (goldens) configuration actually exercises the kernel —
  a silent fallback would leave the fast path untested, and
* every fallback is observable: the simulator emits a ``KernelFallback``
  event naming the cause.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.obs.bus import EventBus
from repro.obs.events import KernelFallback
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload
from repro.workloads.trace import Trace, TraceMeta

LINE = 64

VARIANT_CONFIGS = {
    "ebcp": EBCPConfig(),
    "ebcp_minus": EBCPConfig(skip_epochs=1),
    "ebcp_onchip": EBCPConfig(table_in_memory=False),
}


@pytest.fixture(autouse=True)
def _kernel_env():
    """Each test starts from the default (kernel-enabled) environment."""
    saved = os.environ.pop("REPRO_KERNEL", None)
    yield
    if saved is None:
        os.environ.pop("REPRO_KERNEL", None)
    else:
        os.environ["REPRO_KERNEL"] = saved


def run_pair(trace, config, make_prefetcher, warmup_records=None):
    """Run (kernel, scalar) sims on the same trace; return both sims."""
    os.environ.pop("REPRO_KERNEL", None)
    kernel_sim = EpochSimulator(
        config, make_prefetcher(),
        cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
    )
    kernel_sim.run(trace, warmup_records=warmup_records)

    os.environ["REPRO_KERNEL"] = "off"
    scalar_sim = EpochSimulator(
        config, make_prefetcher(),
        cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
    )
    scalar_sim.run(trace, warmup_records=warmup_records)
    os.environ.pop("REPRO_KERNEL", None)
    return kernel_sim, scalar_sim


def state_fingerprint(sim: EpochSimulator) -> dict:
    """Every piece of post-run state a later scalar run would consult."""
    pf = sim.prefetcher
    l2 = sim.hierarchy.l2
    buf = sim.hierarchy.prefetch_buffer
    open_epoch = sim.tracker.open_epoch
    return {
        "stats": sim.stats.to_dict(),
        "penalty_accum": sim._penalty_accum,
        "interval": (sim._interval_trigger_inst, sim._interval_sealed),
        "store_bytes": (sim._store_read_bytes, sim._store_write_bytes),
        "epoch_count": sim.tracker.epoch_count,
        "open_epoch": None if open_epoch is None else (
            open_epoch.index,
            open_epoch.trigger_line,
            open_epoch.trigger_kind,
            open_epoch.trigger_inst,
            tuple(open_epoch.miss_lines),
            tuple(open_epoch.miss_kinds),
            open_epoch.sealed,
        ),
        "termination": dict(sim.tracker.termination_reasons),
        "mshrs": (sorted(sim.mshrs._lines), vars(sim.mshrs.stats)),
        "l2": (
            sorted((t, s) for bucket in l2._sets for t, s in bucket.items()),
            l2._stamp,
            sorted(l2._dirty),
            vars(l2.stats),
        ),
        "buffer": (
            sorted(
                (e.line, e.ready_cycle, e.table_index, e.last_use, e.issue_epoch)
                for bucket in buf._sets for e in bucket.values()
            ),
            buf._stamp,
            vars(buf.stats),
        ),
        "pending": sorted(
            (p.issue_epoch, p.line, p.request.table_index) for p in sim._pending
        ),
        "table": (
            list(pf.table._tags),
            [None if a is None else dict(a) for a in pf.table._addrs],
            pf.table._stamp,
            vars(pf.table.stats),
        ),
        "emab": (pf.emab.occupancy, pf.emab.overflow_drops, pf.emab.filled_entries),
        "traffic": vars(pf.traffic),
        "issued": pf.issued_requests,
        "suppressed": pf.lookups_suppressed,
        "bandwidth": (
            sim.bandwidth._ema_read_utilization,
            sim.bandwidth._last_read_utilization,
            vars(sim.bandwidth.read_stats),
            vars(sim.bandwidth.write_stats),
        ),
    }


# ----------------------------------------------------------------------
# Identity on every workload family x variant
# ----------------------------------------------------------------------
class TestKernelIdentity:
    @pytest.mark.parametrize("workload", COMMERCIAL_WORKLOADS)
    @pytest.mark.parametrize("variant", sorted(VARIANT_CONFIGS))
    def test_stats_and_state_identical(self, workload, variant):
        trace = make_workload(workload, records=8_000, seed=7)
        cfg = VARIANT_CONFIGS[variant]
        kernel_sim, scalar_sim = run_pair(
            trace, ProcessorConfig.scaled(),
            lambda: EpochBasedCorrelationPrefetcher(cfg),
        )
        assert kernel_sim.last_run_path == "epoch_kernel"
        assert scalar_sim.last_run_path == "compressed"
        assert kernel_sim.stats.to_dict() == scalar_sim.stats.to_dict()
        assert state_fingerprint(kernel_sim) == state_fingerprint(scalar_sim)

    def test_warm_second_run_continues_identically(self):
        """After a kernel run, a scalar run on the same simulator matches
        the all-scalar double run — the synced-back state is complete."""
        trace = make_workload("tpcw", records=6_000, seed=7)
        kernel_sim, scalar_sim = run_pair(
            trace, ProcessorConfig.scaled(), EpochBasedCorrelationPrefetcher
        )
        second_kernel = kernel_sim.run(trace)
        second_scalar = scalar_sim.run(trace)
        # The warm simulator must take the scalar path (precomputed
        # segmentation assumes a cold start) ...
        assert kernel_sim.last_run_path == "compressed"
        # ... and still agree with the never-kernel control, run for run.
        assert second_kernel.stats.to_dict() == second_scalar.stats.to_dict()
        assert state_fingerprint(kernel_sim) == state_fingerprint(scalar_sim)


# ----------------------------------------------------------------------
# Default configuration exercises the kernel (goldens cover it)
# ----------------------------------------------------------------------
class TestKernelIsExercised:
    def test_goldens_configuration_takes_kernel_path(self):
        """The golden-file runs must go through the kernel, not around it."""
        trace = make_workload("tpcw", records=2_000, seed=7)
        sim = EpochSimulator(
            ProcessorConfig.scaled(), EpochBasedCorrelationPrefetcher(),
            cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
        )
        sim.run(trace)
        assert sim.last_run_path == "epoch_kernel"


# ----------------------------------------------------------------------
# Property: identity on adversarial randomized miss streams
# ----------------------------------------------------------------------
#: Tiny geometries so sets conflict hard: 256 B 2-way L1s, a 512 B 2-way
#: L2 (8 lines), an 8-entry buffer, 2 MSHRs and an 8-entry ROB window.
_TINY = ProcessorConfig.scaled(
    rob_size=8,
    l1i=CacheConfig(256, 2, LINE, 3),
    l1d=CacheConfig(256, 2, LINE, 3),
    l2=CacheConfig(512, 2, LINE, 20),
    l2_mshrs=2,
    prefetch_buffer_entries=8,
    prefetch_buffer_ways=2,
)

#: Prime table size -> aliasing; tiny EMAB -> overflow; small degree.
_TINY_EBCP = EBCPConfig(
    prefetch_degree=4,
    table_entries=37,
    addrs_per_entry=4,
    emab_capacity_per_epoch=2,
)


class TestKernelProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        records=st.lists(
            st.tuples(
                st.integers(0, 2),           # kind
                st.integers(0, 31),          # line (tiny space, hard conflicts)
                st.booleans(),               # serial dependence
                st.integers(0, 3),           # instruction gap
            ),
            min_size=1,
            max_size=250,
        ),
        warmup_fraction=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        skip_epochs=st.sampled_from([1, 2]),
        in_memory=st.booleans(),
    )
    def test_random_streams_identical(
        self, records, warmup_fraction, skip_epochs, in_memory
    ):
        n = len(records)
        trace = Trace(
            gap=np.array([g for *_, g in records], dtype=np.int64),
            kind=np.array([k for k, *_ in records], dtype=np.uint8),
            pc=np.array([(line * 4) for _, line, *_ in records], dtype=np.int64),
            addr=np.array([line * LINE for _, line, *_ in records], dtype=np.int64),
            serial=np.array([s for _, _, s, _ in records], dtype=np.uint8),
            meta=TraceMeta(name="prop", cpi_perf=1.0, overlap=0.10),
        )
        cfg = EBCPConfig(
            prefetch_degree=_TINY_EBCP.prefetch_degree,
            table_entries=_TINY_EBCP.table_entries,
            addrs_per_entry=_TINY_EBCP.addrs_per_entry,
            emab_capacity_per_epoch=_TINY_EBCP.emab_capacity_per_epoch,
            skip_epochs=skip_epochs,
            table_in_memory=in_memory,
        )
        kernel_sim, scalar_sim = run_pair(
            trace, _TINY,
            lambda: EpochBasedCorrelationPrefetcher(cfg),
            warmup_records=int(n * warmup_fraction),
        )
        assert kernel_sim.last_run_path == "epoch_kernel"
        assert kernel_sim.stats.to_dict() == scalar_sim.stats.to_dict()
        assert state_fingerprint(kernel_sim) == state_fingerprint(scalar_sim)


# ----------------------------------------------------------------------
# Fallbacks are observable
# ----------------------------------------------------------------------
def _collect_fallbacks(bus: EventBus) -> list:
    events: list = []
    bus.subscribe(KernelFallback, events.append)
    return events


class TestKernelFallback:
    def test_disabled_by_env(self):
        os.environ["REPRO_KERNEL"] = "off"
        trace = make_workload("tpcw", records=2_000, seed=7)
        sim = EpochSimulator(
            ProcessorConfig.scaled(), EpochBasedCorrelationPrefetcher(),
            cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
        )
        sim.run(trace)
        assert sim.last_run_path == "compressed"

    def test_bus_attached_emits_event_with_cause(self):
        trace = make_workload("tpcw", records=2_000, seed=7)
        bus = EventBus()
        events = _collect_fallbacks(bus)
        sim = EpochSimulator(
            ProcessorConfig.scaled(), EpochBasedCorrelationPrefetcher(),
            cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
            bus=bus,
        )
        sim.run(trace)
        assert sim.last_run_path != "epoch_kernel"
        assert [e.cause for e in events] == ["bus_attached"]
        assert events[0].prefetcher == "ebcp"

    def test_legacy_path_emits_compressed_disabled(self):
        trace = make_workload("tpcw", records=2_000, seed=7)
        bus = EventBus()
        events = _collect_fallbacks(bus)
        sim = EpochSimulator(
            ProcessorConfig.scaled(), EpochBasedCorrelationPrefetcher(),
            cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
            bus=bus,
        )
        sim.run(trace, compressed=False)
        assert sim.last_run_path == "legacy"
        assert [e.cause for e in events] == ["compressed_disabled"]

    def test_unsupported_prefetcher_no_kernel(self):
        trace = make_workload("tpcw", records=2_000, seed=7)
        sim = EpochSimulator(
            ProcessorConfig.scaled(), None,
            cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
        )
        sim.run(trace)
        assert sim.last_run_path == "compressed"

    def test_warm_state_falls_back(self):
        from repro.engine.ebcp_kernel import kernel_fallback_cause

        trace = make_workload("tpcw", records=2_000, seed=7)
        sim = EpochSimulator(
            ProcessorConfig.scaled(), EpochBasedCorrelationPrefetcher(),
            cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap,
        )
        sim.run(trace)
        assert sim.last_run_path == "epoch_kernel"
        assert kernel_fallback_cause(sim) == "warm_state"
        sim.run(trace)
        assert sim.last_run_path == "compressed"
