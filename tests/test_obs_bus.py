"""Tests for the event bus: mechanics, ordering, payload invariants.

The second half runs real (small) simulations and asserts the event
stream is consistent with the statistics the simulator reports — the
invariants the exporters and the metrics collector rely on.
"""

from __future__ import annotations

import pytest

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.obs import (
    EVENT_TYPES,
    AccessResolved,
    EpochClosed,
    Event,
    EventBus,
    PrefetchFilled,
    PrefetchHit,
    PrefetchIssued,
    TableRead,
    event_payload,
)
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import make_workload


def small_config() -> ProcessorConfig:
    return ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )


class TestBusMechanics:
    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TableRead, seen.append)
        event = TableRead(nbytes=64, purpose="lookup")
        bus.emit(event)
        assert seen == [event]
        assert bus.emitted == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(TableRead, seen.append)
        unsubscribe()
        bus.emit(TableRead(nbytes=64, purpose="lookup"))
        assert seen == []
        assert not bus.active

    def test_non_event_type_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(int, lambda e: None)

    def test_wants_reflects_subscriptions(self):
        bus = EventBus()
        assert not bus.wants(TableRead)
        unsubscribe = bus.subscribe(TableRead, lambda e: None)
        assert bus.wants(TableRead)
        assert not bus.wants(EpochClosed)
        unsubscribe()
        assert not bus.wants(TableRead)

    def test_catch_all_wants_everything(self):
        bus = EventBus()
        bus.subscribe_all(lambda e: None)
        for event_type in EVENT_TYPES:
            assert bus.wants(event_type)

    def test_typed_subscribers_run_before_catch_all(self):
        bus = EventBus()
        order = []
        bus.subscribe_all(lambda e: order.append("all"))
        bus.subscribe(TableRead, lambda e: order.append("typed"))
        bus.emit(TableRead(nbytes=8, purpose="lookup"))
        assert order == ["typed", "all"]

    def test_undelivered_events_not_counted(self):
        bus = EventBus()
        bus.subscribe(EpochClosed, lambda e: None)
        bus.emit(TableRead(nbytes=8, purpose="lookup"))
        assert bus.emitted == 0

    def test_clear(self):
        bus = EventBus()
        bus.subscribe(TableRead, lambda e: None)
        bus.subscribe_all(lambda e: None)
        bus.clear()
        assert not bus.active


class TestEventPayloads:
    def test_every_event_type_is_frozen_and_tagged(self):
        assert all(issubclass(t, Event) for t in EVENT_TYPES)

    def test_payload_has_event_tag(self):
        payload = event_payload(TableRead(nbytes=64, purpose="lookup"))
        assert payload["event"] == "TableRead"
        assert payload["nbytes"] == 64
        assert payload["purpose"] == "lookup"

    def test_prefetch_hit_lead_epochs(self):
        hit = PrefetchHit(line=1, epoch_index=10, issue_epoch=7, source="ebcp", measured=True)
        assert hit.lead_epochs == 3
        assert event_payload(hit)["lead_epochs"] == 3

    def test_unknown_issue_epoch_gives_negative_lead(self):
        hit = PrefetchHit(line=1, epoch_index=10, issue_epoch=-1, source="ebcp", measured=True)
        assert hit.lead_epochs == -1


class TestSimulationInvariants:
    """The event stream must agree with the simulator's own statistics."""

    @pytest.fixture(scope="class")
    def observed_run(self):
        trace = make_workload("database", records=8_000, seed=3)
        bus = EventBus()
        events: list[Event] = []
        bus.subscribe_all(events.append)
        sim = EpochSimulator(
            ProcessorConfig.scaled(),
            build_prefetcher("ebcp"),
            cpi_perf=trace.meta.cpi_perf,
            overlap=trace.meta.overlap,
            bus=bus,
        )
        result = sim.run(trace, warmup_records=0)
        return result, events

    def test_epoch_closed_count_matches_stats(self, observed_run):
        result, events = observed_run
        closes = [e for e in events if isinstance(e, EpochClosed)]
        assert len(closes) == result.stats.epochs

    def test_epoch_indices_strictly_increasing(self, observed_run):
        _, events = observed_run
        indices = [e.index for e in events if isinstance(e, EpochClosed)]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_epoch_timeline_is_monotone(self, observed_run):
        _, events = observed_run
        closes = [e for e in events if isinstance(e, EpochClosed)]
        starts = [e.start_cycle for e in closes]
        assert starts == sorted(starts)
        assert all(e.duration_cycles > 0 for e in closes)
        assert all(e.n_misses >= 1 for e in closes)

    def test_access_resolved_count_matches_stats(self, observed_run):
        result, events = observed_run
        accesses = [e for e in events if isinstance(e, AccessResolved)]
        assert len(accesses) == result.stats.l2_accesses

    def test_prefetch_lifecycle_counts_match_stats(self, observed_run):
        result, events = observed_run
        filled = sum(isinstance(e, PrefetchFilled) for e in events)
        hits = [e for e in events if isinstance(e, PrefetchHit)]
        assert filled == result.stats.prefetches_filled
        assert sum(e.measured for e in hits) == result.stats.total_prefetch_hits

    def test_issued_before_filled_per_line(self, observed_run):
        _, events = observed_run
        issued_lines = set()
        for event in events:
            if isinstance(event, PrefetchIssued):
                issued_lines.add(event.line)
            elif isinstance(event, PrefetchFilled):
                assert event.line in issued_lines

    def test_every_payload_is_json_safe(self, observed_run):
        import json

        _, events = observed_run
        for event in events[:500]:
            json.dumps(event_payload(event))


class TestNullSink:
    def test_observed_and_unobserved_runs_agree(self):
        """Attaching a bus must not perturb the simulation itself."""
        trace = make_workload("tpcw", records=6_000, seed=5)
        kwargs = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
        plain = EpochSimulator(
            ProcessorConfig.scaled(), build_prefetcher("ebcp"), **kwargs
        ).run(trace, warmup_records=0)
        bus = EventBus()
        bus.subscribe_all(lambda e: None)
        observed = EpochSimulator(
            ProcessorConfig.scaled(), build_prefetcher("ebcp"), bus=bus, **kwargs
        ).run(trace, warmup_records=0)
        assert observed.to_dict() == plain.to_dict()

    def test_unwatched_types_are_never_constructed(self, builder):
        # Only EpochClosed is subscribed: emitted counts only epoch events,
        # because `wants` stops the other emission sites early.
        for i in range(3):
            builder.load(0x100, 0x100_0000 + i * 64, gap=300)
        bus = EventBus()
        closes = []
        bus.subscribe(EpochClosed, closes.append)
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=0)
        assert bus.emitted == len(closes) == 3
