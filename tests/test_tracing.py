"""Tests for end-to-end request tracing and telemetry propagation.

The tentpole contract: a traced served ``simulate`` yields **one
connected span tree** — client send, server handling, admission wait,
micro-batch dispatch, cache lookup and worker-side simulation all share
the client's trace_id, with every parent_id resolvable — and the Chrome
export loads as a single coherent timeline.  Tracing is pure
observability: served results stay bit-identical with it on.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.engine.config import ProcessorConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    SpanRecorder,
    TelemetrySink,
    TraceContext,
    chrome_trace_from_spans,
    write_chrome_trace,
)
from repro.parallel.jobs import JobSpec
from repro.prefetchers.registry import build_prefetcher
from repro.resilience.executor import execute
from repro.resilience.policy import ExecutionPolicy
from repro.service import BackgroundService, ServiceClient, ServiceConfig

RECORDS = 8_000
WORKLOAD = "pointer_chase"
POLICY = ExecutionPolicy(jobs=1)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_new_and_child_share_trace_id(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id

    def test_wire_round_trip(self):
        ctx = TraceContext.new()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "payload",
        [None, 42, "nope", {}, {"trace_id": "a"}, {"trace_id": "", "span_id": "b"},
         {"trace_id": 1, "span_id": "b"}],
    )
    def test_from_wire_is_forgiving(self, payload):
        assert TraceContext.from_wire(payload) is None


class TestSpanRecorder:
    def test_nested_spans_link_parent_ids(self):
        recorder = SpanRecorder("test")
        with recorder.span("outer") as outer:
            with recorder.span("inner", parent=outer.context):
                pass
        inner, outer_span = recorder.spans  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer_span["span_id"]
        assert inner["trace_id"] == outer_span["trace_id"]
        assert outer_span["parent_id"] is None

    def test_exception_is_recorded_and_propagates(self):
        recorder = SpanRecorder("test")
        with pytest.raises(RuntimeError):
            with recorder.span("boom"):
                raise RuntimeError("bad")
        assert recorder.spans[0]["args"]["error"] == "RuntimeError"

    def test_record_manual(self):
        recorder = SpanRecorder("test")
        ctx = TraceContext.new()
        recorder.record_manual("wait", ctx, ts_us=100, dur_us=50, request_id="r1")
        span = recorder.spans[0]
        assert span["parent_id"] == ctx.span_id
        assert span["dur_us"] == 50
        assert span["args"]["request_id"] == "r1"

    def test_drain_empties(self):
        recorder = SpanRecorder("test")
        with recorder.span("a"):
            pass
        assert len(recorder.drain()) == 1
        assert recorder.spans == []


class TestChromeExport:
    def test_events_are_zero_shifted_with_process_metadata(self):
        recorder = SpanRecorder("roleA")
        with recorder.span("one"):
            pass
        doc = chrome_trace_from_spans(recorder.spans)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert slices[0]["ts"] == 0
        assert slices[0]["dur"] >= 1
        assert slices[0]["args"]["trace_id"]
        assert meta[0]["args"]["name"] == "roleA"

    def test_write_round_trips_as_json(self, tmp_path):
        recorder = SpanRecorder("x")
        with recorder.span("a"):
            pass
        path = write_chrome_trace(recorder.spans, tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTelemetrySink:
    def test_absorb_merges_with_label_prefix(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder("parent")
        sink = TelemetrySink(registry=registry, recorder=recorder)
        worker = MetricsRegistry()
        worker.counter("epochs_closed").inc(3)
        sink.absorb([{"name": "job", "trace_id": "t", "span_id": "s",
                      "parent_id": None, "ts_us": 0, "dur_us": 1, "pid": 1,
                      "process": "worker", "args": {}}],
                    worker.to_dict(), label="ebcp")
        assert registry["ebcp.epochs_closed"].value == 3
        assert recorder.spans[0]["name"] == "job"

    def test_metrics_only_sink(self):
        sink = TelemetrySink(registry=MetricsRegistry())
        assert sink.collects_metrics
        sink.absorb(None, {"c": {"type": "counter", "value": 1}}, label="x")
        assert sink.registry["x.c"].value == 1


# ----------------------------------------------------------------------
# Executor propagation
# ----------------------------------------------------------------------
def _spec(seed: int, prefetcher: str = "none") -> JobSpec:
    return JobSpec(
        workload=WORKLOAD,
        records=4_000,
        seed=seed,
        config=ProcessorConfig.scaled(),
        prefetcher=None if prefetcher == "none" else build_prefetcher(prefetcher),
        label=prefetcher,
    )


class TestExecutorPropagation:
    def test_in_process_jobs_join_the_trace(self):
        recorder = SpanRecorder("parent")
        sink = TelemetrySink(registry=MetricsRegistry(), recorder=recorder)
        root = TraceContext.new()
        execute([_spec(1), _spec(2)], POLICY, trace=root, telemetry=sink)
        names = [s["name"] for s in recorder.spans]
        assert names.count("job:none") == 2
        assert "execute" in names
        assert {s["trace_id"] for s in recorder.spans} == {root.trace_id}
        # job spans parent to the execute span
        exec_span = next(s for s in recorder.spans if s["name"] == "execute")
        for span in recorder.spans:
            if span["name"].startswith("job:"):
                assert span["parent_id"] == exec_span["span_id"]

    def test_pooled_workers_ship_spans_across_pickle_boundary(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_POOL", "1")
        recorder = SpanRecorder("parent")
        sink = TelemetrySink(registry=MetricsRegistry(), recorder=recorder)
        root = TraceContext.new()
        results = execute(
            [_spec(1), _spec(2)],
            ExecutionPolicy(jobs=2),
            trace=root,
            telemetry=sink,
        )
        assert len(results) == 2
        job_spans = [s for s in recorder.spans if s["name"].startswith("job:")]
        assert len(job_spans) == 2
        assert {s["trace_id"] for s in job_spans} == {root.trace_id}
        import os

        # The spans were recorded in pool workers, not this process.
        assert all(s["pid"] != os.getpid() for s in job_spans)
        assert all(s["process"] == "worker" for s in job_spans)

    def test_worker_metrics_merge_per_label(self):
        sink = TelemetrySink(registry=MetricsRegistry())
        execute([_spec(1, "ebcp"), _spec(2, "none")], POLICY, telemetry=sink)
        snapshot = sink.registry.to_dict()
        assert snapshot["ebcp.epochs_closed"]["value"] > 0
        assert snapshot["none.epochs_closed"]["value"] > 0

    def test_untraced_execute_is_unchanged(self):
        results = execute([_spec(1)], POLICY)
        assert len(results) == 1

    def test_tracing_does_not_perturb_results(self):
        plain = execute([_spec(5, "ebcp")], POLICY)[0]
        sink = TelemetrySink(registry=MetricsRegistry(),
                             recorder=SpanRecorder("parent"))
        traced = execute(
            [_spec(5, "ebcp")], POLICY, trace=TraceContext.new(), telemetry=sink
        )[0]
        assert traced.snapshot() == plain.snapshot()


# ----------------------------------------------------------------------
# Served end-to-end
# ----------------------------------------------------------------------
@pytest.fixture
def service():
    with BackgroundService(ServiceConfig(port=0), policy=POLICY) as svc:
        yield svc


class TestServedTracePropagation:
    def test_served_simulate_produces_one_connected_span_tree(self, service, tmp_path):
        recorder = SpanRecorder("client")
        with ServiceClient(*service.address, timeout_s=120.0, retries=0,
                           recorder=recorder) as client:
            served = client.simulate(WORKLOAD, "ebcp", records=RECORDS)
        assert served.cached is False

        client_spans = recorder.spans
        server_spans = service.service.recorder.spans
        everything = client_spans + server_spans

        # One trace across client, server and worker roles.
        trace_ids = {s["trace_id"] for s in everything}
        assert len(trace_ids) == 1
        roles = {s["process"] for s in everything}
        assert {"client", "server", "worker"} <= roles

        # The tree covers the request's whole journey...
        names = {s["name"] for s in everything}
        assert {"client:simulate", "server:simulate", "admission", "batch",
                "execute", "cache:lookup"} <= names
        assert any(n.startswith("job:") for n in names)

        # ...and is *connected*: every non-root parent_id resolves.
        by_id = {s["span_id"]: s for s in everything}
        roots = [s for s in everything if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["client:simulate"]
        for span in everything:
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id, (
                    f"span {span['name']} has an unresolvable parent"
                )

        # The Chrome export loads as one timeline over every role.
        path = write_chrome_trace(everything, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(everything)
        assert {e["args"]["trace_id"] for e in slices} == trace_ids
        assert min(e["ts"] for e in slices) == 0

    def test_traced_result_is_bit_identical(self, service):
        recorder = SpanRecorder("client")
        with ServiceClient(*service.address, timeout_s=120.0, retries=0,
                           recorder=recorder) as client:
            served = client.simulate(WORKLOAD, "ebcp", records=RECORDS)
        local = JobSpec(
            workload=WORKLOAD,
            records=RECORDS,
            seed=7,
            config=ProcessorConfig.scaled(),
            prefetcher=build_prefetcher("ebcp"),
            label="ebcp",
        ).run()
        assert dataclasses.asdict(served.result.stats) == dataclasses.asdict(local.stats)
        assert served.result.snapshot() == local.snapshot()

    def test_untraced_client_yields_no_server_spans(self, service):
        with ServiceClient(*service.address, timeout_s=120.0, retries=0) as client:
            client.simulate(WORKLOAD, "none", records=RECORDS)
        assert service.service.recorder.spans == []

    def test_cache_hit_trace_has_no_job_span(self, service):
        recorder = SpanRecorder("client")
        with ServiceClient(*service.address, timeout_s=120.0, retries=0,
                           recorder=recorder) as client:
            client.simulate(WORKLOAD, "none", records=RECORDS)
            second = client.simulate(WORKLOAD, "none", records=RECORDS)
        assert second.cached is True
        second_trace = recorder.spans[-1]["trace_id"]
        hit_spans = [s for s in service.service.recorder.spans
                     if s["trace_id"] == second_trace]
        hit_names = {s["name"] for s in hit_spans}
        assert "cache:lookup" in hit_names
        assert not any(n.startswith("job:") for n in hit_names)

    def test_worker_metrics_aggregate_into_stats(self, service):
        with ServiceClient(*service.address, timeout_s=120.0, retries=0) as client:
            client.simulate(WORKLOAD, "ebcp", records=RECORDS)
            stats = client.stats()
        sim = stats["simulation"]
        assert sim["ebcp.epochs_closed"]["value"] > 0
        assert sim["ebcp.epoch_mlp"]["type"] == "histogram"
        latency = stats["latency_ms"]
        assert latency["count"] >= 1
        assert latency["p99"] >= latency["p50"] >= 0.0

    def test_metrics_request_returns_prometheus_text(self, service):
        with ServiceClient(*service.address, timeout_s=120.0, retries=0) as client:
            client.simulate(WORKLOAD, "ebcp", records=RECORDS)
            text = client.metrics()
        assert "# TYPE repro_requests_received counter" in text
        assert "repro_ebcp_epochs_closed" in text
        assert 'repro_request_latency_ms_bucket{le="+Inf"}' in text
        # Parser-less smoke: every non-comment line is "name[{labels}] value".
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # must parse as a number


class TestProtocolCompat:
    def test_v1_client_without_trace_is_served(self, service):
        """An old client speaking protocol v1 (no trace field) still works."""
        import socket

        from repro.service import protocol

        frame = protocol.encode_frame({
            "v": 1,
            "id": "legacy-1",
            "type": "simulate",
            "params": {"workload": WORKLOAD, "prefetcher": "none",
                       "records": RECORDS, "seed": 7},
        })
        with socket.create_connection(service.address, timeout=120.0) as sock:
            sock.sendall(frame)
            reply = b""
            while not reply.endswith(b"\n"):
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                reply += chunk
        response = json.loads(reply)
        assert response["ok"] is True
        assert response["id"] == "legacy-1"

    def test_v1_frame_parses_without_trace(self):
        from repro.service import protocol

        request = protocol.parse_request(
            b'{"v": 1, "id": "x", "type": "ping"}\n'
        )
        assert request.trace is None
        assert request.version == 1

    def test_malformed_trace_is_dropped_not_fatal(self):
        from repro.service import protocol

        request = protocol.parse_request(
            b'{"v": 2, "id": "x", "type": "ping", "trace": "garbage"}\n'
        )
        assert request.trace is None
