"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS
from repro.prefetchers.registry import PREFETCHERS


class TestParser:
    def test_experiment_choices_match_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table1"])
        assert args.experiment == "table1"
        for name in EXPERIMENTS:
            parser.parse_args(["run", name])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_simulate_choices(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "pointer_chase", "ebcp"])
        assert args.workload == "pointer_chase"
        assert args.prefetcher == "ebcp"
        assert "ebcp" in PREFETCHERS

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_workloads_summary(self, capsys):
        assert main(["workloads", "--records", "20000"]) == 0
        out = capsys.readouterr().out
        assert "database" in out and "tpcw" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "pointer_chase", "none", "--records", "8000"]) == 0
        out = capsys.readouterr().out
        assert "cpi" in out

    def test_simulate_with_prefetcher(self, capsys):
        assert main(["simulate", "pointer_chase", "ebcp", "--records", "8000"]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_run_experiment_small(self, capsys):
        assert main(["run", "table1", "--records", "30000"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "database" in out
