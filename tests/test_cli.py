"""Tests for the command-line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS
from repro.prefetchers.registry import PREFETCHERS


class TestParser:
    def test_experiment_choices_match_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table1"])
        assert args.experiment == "table1"
        for name in EXPERIMENTS:
            parser.parse_args(["run", name])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_simulate_choices(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "pointer_chase", "ebcp"])
        assert args.workload == "pointer_chase"
        assert args.prefetcher == "ebcp"
        assert "ebcp" in PREFETCHERS

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_workloads_summary(self, capsys):
        assert main(["workloads", "--records", "20000"]) == 0
        out = capsys.readouterr().out
        assert "database" in out and "tpcw" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "pointer_chase", "none", "--records", "8000"]) == 0
        out = capsys.readouterr().out
        assert "cpi" in out

    def test_simulate_with_prefetcher(self, capsys):
        assert main(["simulate", "pointer_chase", "ebcp", "--records", "8000"]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_run_experiment_small(self, capsys):
        assert main(["run", "table1", "--records", "30000"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "database" in out


class TestTraceCommand:
    def test_trace_produces_valid_outputs(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "manifest.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "trace", "pointer_chase", "ebcp",
                    "--records", "6000",
                    "--out", str(out),
                    "--jsonl", str(jsonl),
                    "--manifest", str(manifest_path),
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        import json

        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

        manifest = json.loads(manifest_path.read_text())
        closes = sum(
            1 for line in jsonl.read_text().splitlines()
            if json.loads(line)["event"] == "EpochClosed"
        )
        # The headline invariant: the JSONL EpochClosed count equals the
        # stats' epoch count for the same run.
        assert closes == manifest["result"]["epochs"] > 0
        assert manifest["event_counts"]["EpochClosed"] == closes

        metrics = json.loads(metrics_path.read_text())
        assert metrics["epochs_closed"]["value"] == closes

    def test_trace_chrome_only(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "pointer_chase", "none", "--records", "4000",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "perfetto" in capsys.readouterr().out

    def test_simulate_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(["simulate", "pointer_chase", "ebcp", "--records", "6000",
                     "--metrics-out", str(path)]) == 0
        metrics = json.loads(path.read_text())
        assert metrics["epochs_closed"]["value"] > 0
        assert metrics["epoch_misses"]["type"] == "histogram"

    def test_run_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "table1.json"
        assert main(["run", "table1", "--records", "20000",
                     "--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "table"
        assert payload["records"] == 20000

    def test_verbosity_flags_parse(self):
        args = build_parser().parse_args(["-vv", "experiments"])
        assert args.verbose == 2
        args = build_parser().parse_args(["-q", "experiments"])
        assert args.quiet == 1


class TestVersionFlag:
    def test_version_flag_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        """One version, declared twice — keep the copies in lock step."""
        import re
        from pathlib import Path

        from repro import __version__

        # No tomllib on 3.9, so read the pin with a targeted regex.
        pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match is not None, "pyproject.toml lost its version pin"
        assert match.group(1) == __version__


class TestServeCallParser:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--queue-size", "16", "--max-batch", "4",
             "--batch-window-ms", "2.5", "-j", "2"]
        )
        assert args.port == 0
        assert args.queue_size == 16
        assert args.max_batch == 4
        assert args.batch_window_ms == 2.5

    def test_call_simulate_requires_workload(self, capsys):
        assert main(["call"]) == 2

    def test_call_admin_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["call", "--ping", "--stats"])

    def test_call_refused_connection_reports_error(self, capsys):
        # Port 1 is never listening; the client should fail cleanly.
        assert main(["call", "--ping", "--port", "1", "--retries", "0",
                     "--timeout", "2"]) == 1
        assert "cannot reach service" in capsys.readouterr().err


class TestSweepCommand:
    SPEC_DIR = pathlib.Path(__file__).resolve().parents[1] / "specs"
    SPEC = str(SPEC_DIR / "smoke.toml")

    def test_validate_committed_specs(self, capsys):
        specs = sorted(str(p) for p in self.SPEC_DIR.glob("*.toml"))
        assert specs, "committed spec files are missing"
        assert main(["sweep", "validate", *specs]) == 0
        out = capsys.readouterr().out
        assert out.count(": ok") == len(specs)

    def test_validate_prints_plan(self, capsys):
        assert main(["sweep", "validate", self.SPEC, "--print-plan"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "candidate" in out

    def test_validate_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('version = 1\nname = "x"\nworkloads = ["nope"]\n')
        assert main(["sweep", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_sweep_run_writes_summary(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "sweep.json"
        spec = tmp_path / "tiny.toml"
        spec.write_text(
            "version = 1\n"
            'name = "tiny"\n'
            'workloads = ["pointer_chase"]\n'
            "[grid]\n"
            "records = 8000\n"
            "seeds = [7]\n"
            "[[prefetchers]]\n"
            'name = "ebcp"\n'
        )
        assert main(["sweep", "run", str(spec), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "2 jobs" in out and "improvement" in out
        summary = json.loads(out_path.read_text())
        assert summary["name"] == "tiny"
        assert len(summary["points"]) == 2

    def test_sweep_submit_refused_connection(self, capsys):
        assert main(["sweep", "submit", self.SPEC, "--port", "1",
                     "--retries", "0", "--timeout", "2"]) == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_sweep_requires_verb(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])
