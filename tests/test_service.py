"""Tests for the resident simulation service (happy paths).

The acceptance property is **identity**: a served ``simulate`` must
return bit-identical :class:`SimulationStats` to running the same
:class:`JobSpec` locally — the service is warm infrastructure, never a
different simulator.  Failure paths (malformed frames, saturation,
drain) live in ``test_service_failures.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.stats import SimulationResult
from repro.parallel.jobs import JobSpec
from repro.prefetchers.registry import build_prefetcher
from repro.resilience.policy import ExecutionPolicy
from repro.service import (
    AsyncServiceClient,
    BackgroundService,
    ResultCache,
    ServiceClient,
    ServiceConfig,
)

RECORDS = 8_000
WORKLOAD = "pointer_chase"

#: In-process execution (jobs=1) keeps these tests fast; identity holds
#: at any job count because execute() is bit-identical across paths.
POLICY = ExecutionPolicy(jobs=1)


def local_run(workload: str, prefetcher: str, records: int = RECORDS, seed: int = 7,
              warmup_records=None) -> SimulationResult:
    """The reference result: exactly the CLI/sweep JobSpec path."""
    return JobSpec(
        workload=workload,
        records=records,
        seed=seed,
        config=ProcessorConfig.scaled(),
        prefetcher=None if prefetcher == "none" else build_prefetcher(prefetcher),
        label=prefetcher,
        warmup_records=warmup_records,
    ).run()


@pytest.fixture
def service():
    with BackgroundService(ServiceConfig(port=0), policy=POLICY) as svc:
        yield svc


@pytest.fixture
def client(service):
    with ServiceClient(*service.address, timeout_s=120.0, retries=0) as c:
        yield c


class TestRoundTrip:
    def test_ping(self, client):
        from repro import __version__
        from repro.service import PROTOCOL_VERSION, SUPPORTED_VERSIONS

        payload = client.ping()
        assert payload["pong"] is True
        assert payload["version"] == __version__
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["supported_versions"] == list(SUPPORTED_VERSIONS)

    def test_served_simulate_is_bit_identical(self, client):
        served = client.simulate(WORKLOAD, "ebcp", records=RECORDS)
        local = local_run(WORKLOAD, "ebcp")
        assert served.cached is False
        # Field-for-field on the raw counters — not approx, identical.
        assert dataclasses.asdict(served.result.stats) == dataclasses.asdict(local.stats)
        assert served.result.snapshot() == local.snapshot()
        assert served.result.cpi == local.cpi

    def test_served_baseline_is_bit_identical(self, client):
        served = client.simulate(WORKLOAD, "none", records=RECORDS)
        local = local_run(WORKLOAD, "none")
        assert served.result.snapshot() == local.snapshot()

    def test_warmup_split_round_trips(self, client):
        served = client.simulate(WORKLOAD, "ebcp", records=RECORDS, warmup_records=2_000)
        local = local_run(WORKLOAD, "ebcp", warmup_records=2_000)
        assert served.result.snapshot() == local.snapshot()


class TestResultCache:
    def test_repeat_is_cached_and_identical(self, client):
        first = client.simulate(WORKLOAD, "ebcp", records=RECORDS)
        second = client.simulate(WORKLOAD, "ebcp", records=RECORDS)
        assert first.cached is False
        assert second.cached is True
        assert second.result.snapshot() == first.result.snapshot()

    def test_no_cache_forces_rerun(self, client):
        client.simulate(WORKLOAD, "none", records=RECORDS)
        again = client.simulate(WORKLOAD, "none", records=RECORDS, use_cache=False)
        assert again.cached is False

    def test_different_seed_is_a_different_entry(self, client):
        client.simulate(WORKLOAD, "none", records=RECORDS, seed=7)
        b = client.simulate(WORKLOAD, "none", records=RECORDS, seed=8)
        # Different seed -> different trace fingerprint -> cache miss,
        # even though the pointer-chase *stats* happen to coincide.
        assert b.cached is False
        assert client.stats()["cache"]["entries"] == 2

    def test_cache_hits_show_in_stats(self, client):
        client.simulate(WORKLOAD, "none", records=RECORDS)
        client.simulate(WORKLOAD, "none", records=RECORDS)
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["entries"] >= 1

    def test_unit_lru_eviction(self):
        cache = ResultCache(max_entries=1)
        result = local_run(WORKLOAD, "none", records=4_000)
        k1 = ResultCache.key("t1", ("c",), "none", None)
        k2 = ResultCache.key("t2", ("c",), "none", None)
        cache.put(k1, result)
        cache.put(k2, result)
        assert cache.get(k1) is None  # evicted
        hit = cache.get(k2)
        assert hit is not None and hit.snapshot() == result.snapshot()
        # Hits rehydrate fresh objects, never the cached copy itself.
        assert cache.get(k2) is not hit


class TestStats:
    def test_stats_payload_shape(self, client):
        client.simulate(WORKLOAD, "none", records=RECORDS)
        stats = client.stats()
        assert stats["queue"]["limit"] == 64
        assert stats["pool"]["workers"] >= 1
        assert stats["draining"] is False
        metrics = stats["metrics"]
        assert metrics["requests_received"]["value"] >= 2  # simulate + stats
        assert metrics["result_cache_misses"]["value"] >= 1
        assert "request_latency_ms" in metrics
        assert "service_queue_depth" in metrics


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self):
        """Concurrent async simulates land in one executor micro-batch."""
        config = ServiceConfig(port=0, max_batch=8, batch_window_s=0.25)
        with BackgroundService(config, policy=POLICY) as svc:
            host, port = svc.address
            client = AsyncServiceClient(host, port, timeout_s=120.0, retries=0)

            async def fan_out():
                return await asyncio.gather(
                    *(client.simulate(WORKLOAD, "none", records=RECORDS, seed=s)
                      for s in (21, 22, 23))
                )

            served = asyncio.run(fan_out())
            assert all(s.cached is False for s in served)
            for s, seed in zip(served, (21, 22, 23)):
                assert s.result.snapshot() == local_run(
                    WORKLOAD, "none", seed=seed
                ).snapshot()
            batched = svc.service.registry["batch_size"].to_dict()
            assert batched["max"] >= 2

    def test_duplicate_requests_share_one_simulation(self):
        """Identical concurrent requests dedupe into a single job."""
        config = ServiceConfig(port=0, max_batch=8, batch_window_s=0.25)
        with BackgroundService(config, policy=POLICY) as svc:
            host, port = svc.address
            client = AsyncServiceClient(host, port, timeout_s=120.0, retries=0)

            async def fan_out():
                return await asyncio.gather(
                    *(client.simulate(WORKLOAD, "none", records=RECORDS, seed=31)
                      for _ in range(3))
                )

            served = asyncio.run(fan_out())
            snapshots = [s.result.snapshot() for s in served]
            assert snapshots[0] == snapshots[1] == snapshots[2]


class TestApiFacade:
    def test_service_names_are_exported(self):
        from repro import api

        for name in ("ServiceClient", "AsyncServiceClient", "ServedResult",
                     "ServiceConfig", "SimulationService", "ServiceError",
                     "ServiceBusyError"):
            assert name in api.__all__
            assert hasattr(api, name)
