"""Tests for the simulator's observation hooks and writeback modelling."""

from __future__ import annotations

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.memory.hierarchy import AccessOutcome
from repro.workloads.trace import TraceBuilder


def small_config(**overrides) -> ProcessorConfig:
    base = ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )
    return base.replace(**overrides) if overrides else base


class TestListeners:
    def test_epoch_listener_sees_every_close(self, builder):
        for i in range(5):
            builder.load(0x100, 0x100_0000 + i * 64, gap=300)
        sim = EpochSimulator(small_config())
        closed = []
        sim.epoch_listener = closed.append
        sim.run(builder.build(), warmup_records=0)
        assert len(closed) == 5
        assert [e.index for e in closed] == list(range(5))

    def test_access_listener_sees_l2_accesses_only(self, builder):
        builder.load(0x100, 0x100_0000, gap=10)
        builder.load(0x100, 0x100_0000, gap=10)  # L1 hit: not an L2 access
        sim = EpochSimulator(small_config())
        seen = []
        sim.access_listener = lambda access, line, result: seen.append(result.outcome)
        sim.run(builder.build(), warmup_records=0)
        assert seen == [AccessOutcome.OFFCHIP_MISS]

    def test_listeners_fire_during_warmup_too(self, builder):
        for i in range(4):
            builder.load(0x100, 0x100_0000 + i * 64, gap=300)
        sim = EpochSimulator(small_config())
        closed = []
        sim.epoch_listener = closed.append
        sim.run(builder.build(), warmup_records=2)
        assert len(closed) == 4


class TestWritebacks:
    def test_dirty_eviction_reported_and_charged(self, builder):
        # Store to one line, then walk enough lines through its L2 set to
        # evict it: 16 KB 4-way = 64 sets; lines 0, 64, 128... share set 0.
        builder.store(0x100, 0x100_0000, gap=10)
        for k in range(1, 6):
            builder.load(0x100, 0x100_0000 + k * 64 * 64, gap=300)
        sim = EpochSimulator(small_config())
        writebacks = []
        sim.access_listener = (
            lambda access, line, result: writebacks.append(result.writeback_line)
            if result.writeback_line is not None
            else None
        )
        result = sim.run(builder.build(), warmup_records=0)
        assert len(writebacks) == 1
        assert writebacks[0] == 0x100_0000 >> 6
        # The writeback consumed write-bus bytes.
        assert result.stats.write_bytes >= 2 * 64  # store fill + writeback

    def test_clean_eviction_not_reported(self, builder):
        builder.load(0x100, 0x100_0000, gap=10)
        for k in range(1, 6):
            builder.load(0x100, 0x100_0000 + k * 64 * 64, gap=300)
        sim = EpochSimulator(small_config())
        writebacks = []
        sim.access_listener = (
            lambda access, line, result: writebacks.append(result.writeback_line)
            if result.writeback_line is not None
            else None
        )
        sim.run(builder.build(), warmup_records=0)
        assert writebacks == []

    def test_rewritten_line_dirty_again(self, builder):
        builder.store(0x100, 0x100_0000, gap=10)
        builder.store(0x100, 0x100_0000, gap=10)  # L1 hit, still dirty in L2
        for k in range(1, 6):
            builder.load(0x100, 0x100_0000 + k * 64 * 64, gap=300)
        sim = EpochSimulator(small_config())
        count = [0]

        def listener(access, line, result):
            if result.writeback_line is not None:
                count[0] += 1

        sim.access_listener = listener
        sim.run(builder.build(), warmup_records=0)
        assert count[0] == 1  # one dirty line -> one writeback
