"""Tests for the simulator's observation hooks and writeback modelling.

Observation goes through the :mod:`repro.obs` event bus; the pre-bus
``epoch_listener``/``access_listener`` shims were removed after their
deprecation cycle.
"""

from __future__ import annotations

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.memory.hierarchy import AccessOutcome
from repro.obs import AccessResolved, EpochClosed, EventBus
from repro.workloads.trace import TraceBuilder


def small_config(**overrides) -> ProcessorConfig:
    base = ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )
    return base.replace(**overrides) if overrides else base


class TestBusObservation:
    def test_epoch_closed_fires_for_every_close(self, builder):
        for i in range(5):
            builder.load(0x100, 0x100_0000 + i * 64, gap=300)
        bus = EventBus()
        closed = []
        bus.subscribe(EpochClosed, lambda event: closed.append(event.epoch))
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=0)
        assert len(closed) == 5
        assert [e.index for e in closed] == list(range(5))

    def test_access_resolved_sees_l2_accesses_only(self, builder):
        builder.load(0x100, 0x100_0000, gap=10)
        builder.load(0x100, 0x100_0000, gap=10)  # L1 hit: not an L2 access
        bus = EventBus()
        seen = []
        bus.subscribe(AccessResolved, lambda event: seen.append(event.result.outcome))
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=0)
        assert seen == [AccessOutcome.OFFCHIP_MISS]

    def test_events_fire_during_warmup_too(self, builder):
        for i in range(4):
            builder.load(0x100, 0x100_0000 + i * 64, gap=300)
        bus = EventBus()
        closed = []
        bus.subscribe(EpochClosed, lambda event: closed.append(event.epoch))
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=2)
        assert len(closed) == 4

    def test_epoch_closed_marks_warmup_windows_unmeasured(self, builder):
        for i in range(4):
            builder.load(0x100, 0x100_0000 + i * 64, gap=300)
        bus = EventBus()
        measured = []
        bus.subscribe(EpochClosed, lambda event: measured.append(event.measured))
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=2)
        assert measured[0] is False
        assert measured[-1] is True


class TestShimsRemoved:
    def test_legacy_listener_attributes_are_gone(self):
        sim = EpochSimulator(small_config())
        assert not hasattr(sim, "epoch_listener")
        assert not hasattr(sim, "access_listener")


class TestWritebacks:
    @staticmethod
    def _writeback_collector(bus: EventBus, writebacks: list) -> None:
        bus.subscribe(
            AccessResolved,
            lambda event: writebacks.append(event.result.writeback_line)
            if event.result.writeback_line is not None
            else None,
        )

    def test_dirty_eviction_reported_and_charged(self, builder):
        # Store to one line, then walk enough lines through its L2 set to
        # evict it: 16 KB 4-way = 64 sets; lines 0, 64, 128... share set 0.
        builder.store(0x100, 0x100_0000, gap=10)
        for k in range(1, 6):
            builder.load(0x100, 0x100_0000 + k * 64 * 64, gap=300)
        bus = EventBus()
        writebacks = []
        self._writeback_collector(bus, writebacks)
        sim = EpochSimulator(small_config(), bus=bus)
        result = sim.run(builder.build(), warmup_records=0)
        assert len(writebacks) == 1
        assert writebacks[0] == 0x100_0000 >> 6
        # The writeback consumed write-bus bytes.
        assert result.stats.write_bytes >= 2 * 64  # store fill + writeback

    def test_clean_eviction_not_reported(self, builder):
        builder.load(0x100, 0x100_0000, gap=10)
        for k in range(1, 6):
            builder.load(0x100, 0x100_0000 + k * 64 * 64, gap=300)
        bus = EventBus()
        writebacks = []
        self._writeback_collector(bus, writebacks)
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=0)
        assert writebacks == []

    def test_rewritten_line_dirty_again(self, builder):
        builder.store(0x100, 0x100_0000, gap=10)
        builder.store(0x100, 0x100_0000, gap=10)  # L1 hit, still dirty in L2
        for k in range(1, 6):
            builder.load(0x100, 0x100_0000 + k * 64 * 64, gap=300)
        bus = EventBus()
        writebacks = []
        self._writeback_collector(bus, writebacks)
        sim = EpochSimulator(small_config(), bus=bus)
        sim.run(builder.build(), warmup_records=0)
        assert len(writebacks) == 1  # one dirty line -> one writeback
