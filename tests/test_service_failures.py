"""Failure paths of the simulation service.

Everything here is driven deterministically: raw sockets give exact
control over what hits the wire, and the server's dispatch-gate test
seam (``hold_dispatch``) freezes the batcher so queue saturation and
drain-with-work-pending become observable states instead of races.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.resilience.policy import ExecutionPolicy
from repro.service import (
    BackgroundService,
    ServiceBusyError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    protocol,
)
from repro.service.protocol import ErrorCode, ProtocolError

RECORDS = 6_000
WORKLOAD = "pointer_chase"
POLICY = ExecutionPolicy(jobs=1)


def raw_roundtrip(address, payload: bytes) -> dict:
    """Send raw bytes, read one response frame."""
    with socket.create_connection(address, timeout=30.0) as sock:
        sock.sendall(payload)
        with sock.makefile("rb") as rfile:
            return json.loads(rfile.readline())


def simulate_frame(request_id: str, **over) -> bytes:
    params = {"workload": WORKLOAD, "prefetcher": "none", "records": RECORDS, "seed": 7}
    params.update(over)
    return protocol.encode_frame(
        {"v": 1, "id": request_id, "type": "simulate", "params": params}
    )


def hold_dispatch(svc: BackgroundService) -> None:
    """Freeze the batcher from the test thread; settle before returning."""
    loop = svc.service._loop
    assert loop is not None
    loop.call_soon_threadsafe(svc.service.hold_dispatch)
    time.sleep(0.05)


@pytest.fixture
def service():
    with BackgroundService(ServiceConfig(port=0), policy=POLICY) as svc:
        yield svc


class TestMalformedFrames:
    def test_not_json(self, service):
        frame = raw_roundtrip(service.address, b"this is not json\n")
        assert frame["ok"] is False
        assert frame["error"]["code"] == "malformed_frame"

    def test_json_but_not_an_object(self, service):
        frame = raw_roundtrip(service.address, b"[1, 2, 3]\n")
        assert frame["ok"] is False
        assert frame["error"]["code"] == "malformed_frame"

    def test_missing_version(self, service):
        frame = raw_roundtrip(
            service.address, protocol.encode_frame({"id": "x", "type": "ping"})
        )
        assert frame["ok"] is False
        assert frame["error"]["code"] == "malformed_frame"
        assert frame["id"] == "x"  # echoed so the client can correlate

    def test_oversized_frame_answered_then_disconnected(self, service):
        blob = b'{"pad": "' + b"x" * (protocol.MAX_FRAME_BYTES + 1024) + b'"}\n'
        with socket.create_connection(service.address, timeout=30.0) as sock:
            sock.sendall(blob)
            with sock.makefile("rb") as rfile:
                frame = json.loads(rfile.readline())
                assert frame["error"]["code"] == "malformed_frame"
                assert rfile.readline() == b""  # server hung up: stream desynced


class TestVersionNegotiation:
    def test_unknown_version_lists_supported(self, service):
        frame = raw_roundtrip(
            service.address,
            protocol.encode_frame({"v": 99, "id": "q", "type": "ping"}),
        )
        assert frame["ok"] is False
        assert frame["id"] == "q"
        assert frame["error"]["code"] == "unsupported_version"
        assert frame["error"]["supported"] == list(protocol.SUPPORTED_VERSIONS)

    def test_unknown_type_lists_known(self, service):
        frame = raw_roundtrip(
            service.address,
            protocol.encode_frame({"v": 1, "id": "q", "type": "teleport"}),
        )
        assert frame["error"]["code"] == "unknown_type"
        assert set(frame["error"]["known"]) == set(protocol.REQUEST_TYPES)

    def test_unknown_workload_rejected(self, service):
        frame = raw_roundtrip(
            service.address, simulate_frame("q", workload="quake3")
        )
        assert frame["error"]["code"] == "invalid_request"
        assert "database" in frame["error"]["known"]

    def test_unknown_simulate_parameter_rejected(self, service):
        frame = raw_roundtrip(service.address, simulate_frame("q", threads=4))
        assert frame["error"]["code"] == "invalid_request"
        assert "threads" in frame["error"]["message"]

    def test_client_raises_typed_error(self, service):
        with ServiceClient(*service.address, retries=0) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.simulate("quake3", "none", records=RECORDS)
            assert excinfo.value.code is ErrorCode.INVALID_REQUEST


class TestBackpressure:
    def test_queue_saturation_answers_queue_full(self):
        config = ServiceConfig(port=0, queue_size=1, max_batch=1, batch_window_s=0.001)
        with BackgroundService(config, policy=POLICY) as svc:
            hold_dispatch(svc)
            # req1: dequeued into the held batch; req2: fills the queue.
            sock1 = socket.create_connection(svc.address, timeout=60.0)
            sock1.sendall(simulate_frame("r1"))
            time.sleep(0.3)  # batcher takes r1, parks at the gate
            sock2 = socket.create_connection(svc.address, timeout=60.0)
            sock2.sendall(simulate_frame("r2"))
            time.sleep(0.2)
            try:
                # req3 bounces immediately with the backpressure hint.
                frame = raw_roundtrip(svc.address, simulate_frame("r3"))
                assert frame["ok"] is False
                assert frame["error"]["code"] == "queue_full"
                assert frame["error"]["retry_after_s"] > 0
                assert svc.service.registry["queue_saturated"].value >= 1
                # Release: both held requests still complete, in order.
                svc.service.release_dispatch_threadsafe()
                for sock, rid in ((sock1, "r1"), (sock2, "r2")):
                    with sock.makefile("rb") as rfile:
                        response = json.loads(rfile.readline())
                    assert response["ok"] is True
                    assert response["id"] == rid
                    assert response["result"]["stats"]["instructions"] > 0
            finally:
                sock1.close()
                sock2.close()

    def test_sync_client_retries_after_busy(self):
        """ServiceBusyError is retried honouring retry_after_s."""
        config = ServiceConfig(port=0, queue_size=1, max_batch=1, batch_window_s=0.001)
        with BackgroundService(config, policy=POLICY) as svc:
            hold_dispatch(svc)
            sock1 = socket.create_connection(svc.address, timeout=60.0)
            sock1.sendall(simulate_frame("r1"))
            time.sleep(0.3)
            sock2 = socket.create_connection(svc.address, timeout=60.0)
            sock2.sendall(simulate_frame("r2"))
            time.sleep(0.2)
            try:
                # No retry budget: the saturation surfaces as the typed error.
                with ServiceClient(*svc.address, retries=0) as impatient:
                    with pytest.raises(ServiceBusyError) as excinfo:
                        impatient.simulate(WORKLOAD, "none", records=RECORDS)
                    assert excinfo.value.retry_after_s > 0
                # With budget: a timer releases the gate; the retry lands.
                timer = threading.Timer(
                    0.5, svc.service.release_dispatch_threadsafe
                )
                timer.start()
                try:
                    with ServiceClient(
                        *svc.address, retries=5, backoff_s=0.2
                    ) as patient:
                        served = patient.simulate(WORKLOAD, "none", records=RECORDS)
                    assert served.result.stats.instructions > 0
                finally:
                    timer.join()
                sock1.close()
                sock2.close()
                sock1 = sock2 = None
            finally:
                if sock1 is not None:
                    sock1.close()
                if sock2 is not None:
                    sock2.close()

    def test_client_retries_after_timeout(self):
        """A timed-out attempt reconnects and retries; the retry succeeds."""
        config = ServiceConfig(port=0, max_batch=1, batch_window_s=0.001)
        with BackgroundService(config, policy=POLICY) as svc:
            hold_dispatch(svc)
            # Unfreeze after the client's first attempt has timed out.
            timer = threading.Timer(0.8, svc.service.release_dispatch_threadsafe)
            timer.start()
            try:
                with ServiceClient(
                    *svc.address, timeout_s=0.5, retries=3, backoff_s=0.2
                ) as client:
                    served = client.simulate(WORKLOAD, "none", records=RECORDS)
                assert served.result.stats.instructions > 0
                # The held first attempt really did hit the server too.
                assert svc.service.registry["requests.simulate"].value >= 2
            finally:
                timer.join()

    def test_from_policy_mirrors_execution_policy(self):
        policy = ExecutionPolicy(timeout_s=12.0, retries=4, backoff_s=1.5)
        client = ServiceClient.from_policy("127.0.0.1", 7421, policy)
        assert client.timeout_s == 12.0
        assert client.retries == 4
        assert client.backoff_s == 1.5


class TestDrain:
    def test_shutdown_completes_in_flight_requests(self):
        config = ServiceConfig(port=0, max_batch=1, batch_window_s=0.001)
        svc = BackgroundService(config, policy=POLICY).start()
        hold_dispatch(svc)
        sock1 = socket.create_connection(svc.address, timeout=60.0)
        try:
            sock1.sendall(simulate_frame("inflight"))
            time.sleep(0.3)  # admitted and parked at the held gate

            with ServiceClient(*svc.address, retries=0) as admin:
                assert admin.shutdown() == {"draining": True}
                # Draining: new simulate admissions are refused...
                with pytest.raises(ServiceError) as excinfo:
                    admin.simulate(WORKLOAD, "none", records=RECORDS)
                assert excinfo.value.code is ErrorCode.SHUTTING_DOWN

            # ...but the in-flight request still completes and is delivered.
            svc.service.release_dispatch_threadsafe()
            with sock1.makefile("rb") as rfile:
                response = json.loads(rfile.readline())
            assert response["ok"] is True
            assert response["id"] == "inflight"
            assert response["result"]["stats"]["instructions"] > 0
        finally:
            sock1.close()
        # The service thread exits on its own once drained.
        svc._thread.join(30.0)
        assert not svc._thread.is_alive()

    def test_sigterm_equivalent_drains_cleanly(self, service):
        # begin_drain is exactly what the SIGTERM handler invokes.
        service.service.begin_drain_threadsafe()
        service._thread.join(30.0)
        assert not service._thread.is_alive()
        assert service.service.draining is True


class TestProtocolUnits:
    def test_encode_decode_roundtrip(self):
        payload = {"v": 1, "id": "a", "type": "ping"}
        assert protocol.decode_frame(protocol.encode_frame(payload)) == payload

    def test_parse_request_requires_string_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_request(
                protocol.encode_frame({"v": 1, "id": 7, "type": "ping"})
            )
        assert excinfo.value.code is ErrorCode.MALFORMED_FRAME

    def test_raise_for_error_maps_queue_full(self):
        frame = protocol.error_response(
            "x", ErrorCode.QUEUE_FULL, "busy", retry_after_s=0.25
        )
        with pytest.raises(ServiceBusyError) as excinfo:
            protocol.raise_for_error(frame)
        assert excinfo.value.retry_after_s == 0.25

    def test_raise_for_error_passes_ok_frames(self):
        frame = protocol.ok_response("x", {"pong": True})
        assert protocol.raise_for_error(frame) is frame

    def test_simulate_params_validation(self):
        from repro.service.protocol import SimulateParams

        with pytest.raises(ProtocolError):
            SimulateParams(workload="db", records=0)
        with pytest.raises(ProtocolError):
            SimulateParams(workload="")
        with pytest.raises(ProtocolError):
            SimulateParams.from_dict({"workload": "db", "bogus": 1})
        round_tripped = SimulateParams.from_dict(
            SimulateParams(workload="db", warmup_records=100).to_dict()
        )
        assert round_tripped.warmup_records == 100
