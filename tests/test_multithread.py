"""Tests for multi-threaded trace composition and the CMP EBCP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cmp import (
    CMPEBCPConfig,
    InterleavedStreamEBCP,
    PerThreadEpochPrefetcher,
)
from repro.core.prefetcher import EBCPConfig
from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.memory.hierarchy import CacheHierarchy
from repro.workloads.multithread import (
    THREAD_ADDR_STRIDE,
    interleave_traces,
    make_cmp_workload,
)
from repro.workloads.synthetic import repeating_miss_loop
from repro.workloads.trace import TraceBuilder

from tests.helpers import make_access


def two_small_traces():
    a = TraceBuilder()
    for i in range(5):
        a.load(0x10, 0x1000 + i * 64, gap=100)
    b = TraceBuilder()
    for i in range(5):
        b.load(0x20, 0x2000 + i * 64, gap=150)
    return a.build(), b.build()


class TestInterleave:
    def test_records_preserved_and_tagged(self):
        a, b = two_small_traces()
        merged = interleave_traces([a, b])
        assert len(merged) == 10
        assert merged.n_threads == 2
        assert (merged.tid == 0).sum() == 5
        assert (merged.tid == 1).sum() == 5

    def test_instruction_order(self):
        a, b = two_small_traces()
        merged = interleave_traces([a, b])
        times = np.cumsum(merged.gap)
        assert (np.diff(times) >= 0).all()
        # Total timeline equals the slowest thread, not the sum: the
        # threads run concurrently.
        assert merged.instructions == max(a.instructions, b.instructions)

    def test_address_spaces_disjoint(self):
        a, b = two_small_traces()
        merged = interleave_traces([a, b])
        addrs_t0 = merged.addr[merged.tid == 0]
        addrs_t1 = merged.addr[merged.tid == 1]
        assert addrs_t1.min() >= THREAD_ADDR_STRIDE
        assert addrs_t0.max() < THREAD_ADDR_STRIDE

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces([])

    def test_make_cmp_workload(self):
        trace = make_cmp_workload("database", n_threads=2, records_per_thread=3000)
        assert trace.n_threads == 2
        assert len(trace) == 6000
        assert trace.meta.extra["n_threads"] == 2

    def test_single_thread_passthrough_semantics(self):
        loop = repeating_miss_loop(unique_lines=64, records=100)
        merged = interleave_traces([loop])
        assert merged.n_threads == 1
        assert list(merged.addr) == list(loop.addr)


class TestPerThreadPrefetcher:
    def make(self):
        pf = PerThreadEpochPrefetcher(
            CMPEBCPConfig(EBCPConfig(prefetch_degree=4, table_entries=1024))
        )
        pf.bind(CacheHierarchy(ProcessorConfig.scaled()))
        return pf

    def test_threads_get_separate_state(self):
        pf = self.make()
        pf.observe_offchip_miss(make_access(0x1000), 0x40, None, True)
        access_t1 = make_access(0x2000)
        access_t1 = type(access_t1)(
            kind=access_t1.kind, pc=0x1, addr=0x2000, tid=1, inst_index=5
        )
        pf.observe_offchip_miss(access_t1, 0x80, None, True)
        assert pf.n_tracked_threads == 2

    def test_interleaved_variant_collapses_threads(self):
        pf = InterleavedStreamEBCP(
            CMPEBCPConfig(EBCPConfig(prefetch_degree=4, table_entries=1024))
        )
        pf.bind(CacheHierarchy(ProcessorConfig.scaled()))
        for tid in range(3):
            access = make_access(0x1000 + tid * 0x100)
            access = type(access)(
                kind=access.kind, pc=0x1, addr=access.addr, tid=tid, inst_index=tid * 500
            )
            pf.observe_offchip_miss(access, 0x40 + tid, None, True)
        assert pf.n_tracked_threads == 1

    def test_per_thread_learning_survives_interleaving(self):
        """Two perfectly-recurring loops interleaved: per-thread EBCP
        must retain most of the single-thread gain; the thread-blind
        variant learns scrambled sequences and gains far less."""
        loops = [
            repeating_miss_loop(unique_lines=6000, records=40_000, misses_per_epoch=3,
                                seed=s)
            for s in (1, 2)
        ]
        trace = interleave_traces(loops)
        config = ProcessorConfig.scaled()
        base = EpochSimulator(config, None).run(trace)
        per_thread = EpochSimulator(
            config,
            PerThreadEpochPrefetcher(CMPEBCPConfig(EBCPConfig(prefetch_degree=8))),
        ).run(trace)
        blind = EpochSimulator(
            config,
            InterleavedStreamEBCP(CMPEBCPConfig(EBCPConfig(prefetch_degree=8))),
        ).run(trace)
        assert per_thread.improvement_over(base) > 0.15
        assert per_thread.improvement_over(base) > 1.5 * blind.improvement_over(base)

    def test_matches_single_thread_ebcp_on_one_thread(self):
        """On a single-threaded trace the CMP design reduces to EBCP."""
        from repro.core.prefetcher import EpochBasedCorrelationPrefetcher

        trace = repeating_miss_loop(unique_lines=6000, records=30_000)
        config = ProcessorConfig.scaled()
        base = EpochSimulator(config, None).run(trace)
        cmp_result = EpochSimulator(
            config,
            PerThreadEpochPrefetcher(CMPEBCPConfig(EBCPConfig(prefetch_degree=8))),
        ).run(trace)
        st_result = EpochSimulator(
            config,
            EpochBasedCorrelationPrefetcher(EBCPConfig(prefetch_degree=8)),
        ).run(trace)
        assert cmp_result.improvement_over(base) == pytest.approx(
            st_result.improvement_over(base), abs=0.05
        )
