"""On-disk trace cache: lossless round-trips and robust degradation."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.workloads.cache import TraceCache, cache_key, trace_cache
from repro.workloads.commercial import build_commercial_trace
from repro.workloads.registry import make_workload
from repro.workloads.trace import Trace


def _build(records: int = 2_000):
    return build_commercial_trace("tpcw", records=records, seed=11)


def _assert_traces_identical(a: Trace, b: Trace) -> None:
    for column in ("gap", "kind", "pc", "addr", "serial", "tid"):
        np.testing.assert_array_equal(getattr(a, column), getattr(b, column))
        assert getattr(a, column).dtype == getattr(b, column).dtype, column
    assert a.meta == b.meta


class TestTraceCache:
    def test_miss_builds_and_persists(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = cache.get_or_build("tpcw", 2_000, 11, 1.0, _build)
        assert (cache.hits, cache.misses) == (0, 1)
        path = cache.path_for("tpcw", 2_000, 11, 1.0)
        assert path is not None and path.exists()
        assert len(trace) == 2_000

    def test_hit_round_trips_losslessly(self, tmp_path):
        """A cache hit preserves every column and all TraceMeta fields.

        ``cpi_perf``/``overlap`` feed the timing model directly, so a lossy
        meta round-trip would silently change every cycle count.
        """
        cache = TraceCache(tmp_path)
        built = cache.get_or_build("tpcw", 2_000, 11, 1.0, _build)
        loaded = cache.get_or_build(
            "tpcw", 2_000, 11, 1.0, lambda: pytest.fail("unexpected rebuild")
        )
        assert cache.hits == 1
        _assert_traces_identical(built, loaded)
        assert loaded.meta.cpi_perf == built.meta.cpi_perf
        assert loaded.meta.overlap == built.meta.overlap

    def test_distinct_parameters_distinct_entries(self, tmp_path):
        keys = {
            cache_key("tpcw", 2_000, 11, 1.0),
            cache_key("tpcw", 2_000, 12, 1.0),
            cache_key("tpcw", 2_001, 11, 1.0),
            cache_key("database", 2_000, 11, 1.0),
            cache_key("tpcw", 2_000, 11, 2.0),
        }
        assert len(keys) == 5

    def test_corrupt_entry_regenerates_with_warning(self, tmp_path, caplog):
        cache = TraceCache(tmp_path)
        cache.get_or_build("tpcw", 2_000, 11, 1.0, _build)
        path = cache.path_for("tpcw", 2_000, 11, 1.0)
        path.write_bytes(b"this is not an npz file")
        with caplog.at_level(logging.WARNING, logger="repro.resilience.integrity"):
            trace = cache.get_or_build("tpcw", 2_000, 11, 1.0, _build)
        assert any("quarantined" in rec.message for rec in caplog.records)
        assert cache.misses == 2  # regeneration counted as a miss
        _assert_traces_identical(trace, _build())
        # The bad file was quarantined and replaced by a good one.
        assert (tmp_path / "quarantine" / path.name).exists()
        _assert_traces_identical(Trace.load(path), trace)

    def test_disabled_cache_always_builds(self):
        cache = TraceCache(None)
        assert not cache.enabled
        assert cache.path_for("tpcw", 2_000, 11, 1.0) is None
        trace = cache.get_or_build("tpcw", 2_000, 11, 1.0, _build)
        assert len(trace) == 2_000
        assert (cache.hits, cache.misses) == (0, 0)

    def test_unwritable_root_degrades_gracefully(self, tmp_path, caplog):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = TraceCache(blocker / "sub")  # mkdir will fail
        with caplog.at_level(logging.WARNING, logger="repro.workloads.cache"):
            trace = cache.get_or_build("tpcw", 2_000, 11, 1.0, _build)
        assert len(trace) == 2_000
        assert any("could not write" in rec.message for rec in caplog.records)


class TestEnvironmentControl:
    @pytest.mark.parametrize("value", ["0", "off", "none", "false", ""])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_CACHE", value)
        assert not trace_cache().enabled

    def test_path_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "mycache"))
        cache = trace_cache()
        assert cache.enabled
        assert cache.root == tmp_path / "mycache"

    def test_default_is_under_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        cache = trace_cache()
        assert cache.enabled
        assert cache.root.name == "traces"

    def test_registry_uses_disk_cache(self, monkeypatch, tmp_path):
        """make_workload populates the on-disk cache (via the lru memo)."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        from repro.workloads import registry

        registry._cached_commercial.cache_clear()
        trace = make_workload("tpcw", records=1_500, seed=23)
        entry = trace_cache().path_for("tpcw", 1_500, 23, 1.0)
        assert entry.exists()
        # A fresh in-process memo now loads from disk instead of rebuilding.
        registry._cached_commercial.cache_clear()
        _assert_traces_identical(make_workload("tpcw", records=1_500, seed=23), trace)
        registry._cached_commercial.cache_clear()
