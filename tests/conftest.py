"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.workloads.trace import TraceBuilder, TraceMeta


@pytest.fixture
def tiny_config() -> ProcessorConfig:
    """A very small hierarchy so tests can force misses cheaply.

    4 KB L1s (64 lines), 16 KB L2 (256 lines), 64-entry prefetch buffer,
    paper-default latency/bandwidth.
    """
    return ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
    )


@pytest.fixture
def builder() -> TraceBuilder:
    return TraceBuilder(TraceMeta(name="test"))
