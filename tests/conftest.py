"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal

import pytest

from repro.engine.config import CacheConfig, ProcessorConfig
from repro.workloads.trace import TraceBuilder, TraceMeta

#: Per-test wall-clock ceiling in seconds (``pytest-timeout`` is not
#: available in the pinned environment, so this is implemented with
#: ``SIGALRM``).  A hung test — the failure mode the resilience layer
#: exists to contain — aborts with a stack trace instead of wedging the
#: whole suite.  Override with ``REPRO_TEST_TIMEOUT`` (0 disables).
_TEST_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.fixture(autouse=True)
def _test_timeout(request):
    """Abort any single test that runs longer than the ceiling."""
    if _TEST_TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT_S}s "
            f"({request.node.nodeid})",
            pytrace=True,
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def tiny_config() -> ProcessorConfig:
    """A very small hierarchy so tests can force misses cheaply.

    4 KB L1s (64 lines), 16 KB L2 (256 lines), 64-entry prefetch buffer,
    paper-default latency/bandwidth.
    """
    return ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
    )


@pytest.fixture
def builder() -> TraceBuilder:
    return TraceBuilder(TraceMeta(name="test"))
