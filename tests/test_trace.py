"""Tests for the trace container and builder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.request import AccessKind
from repro.workloads.trace import Trace, TraceBuilder, TraceMeta


class TestBuilder:
    def test_add_records(self, builder):
        builder.ifetch(0x1000, gap=10)
        builder.load(0x2000, 0x8000, gap=5, serial=True)
        builder.store(0x2010, 0x9000, gap=3)
        trace = builder.build()
        assert len(trace) == 3
        assert list(trace.kind) == [0, 1, 2]
        assert list(trace.serial) == [0, 1, 0]
        assert trace.instructions == 18

    def test_pad_accumulates_into_next_record(self, builder):
        builder.pad(100)
        builder.pad(50)
        builder.load(0x1, 0x2, gap=5)
        trace = builder.build()
        assert trace.gap[0] == 155

    def test_rejects_negative_gap(self, builder):
        with pytest.raises(ValueError):
            builder.load(0x1, 0x2, gap=-1)
        with pytest.raises(ValueError):
            builder.pad(-5)

    def test_ifetch_pc_equals_addr(self, builder):
        builder.ifetch(0x4040)
        trace = builder.build()
        assert trace.pc[0] == trace.addr[0] == 0x4040


class TestTrace:
    def _simple_trace(self):
        builder = TraceBuilder(TraceMeta(name="t", cpi_perf=1.5))
        for i in range(10):
            builder.load(0x100, i * 64, gap=7)
        return builder.build()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3), np.zeros(3)
            )

    def test_slice(self):
        trace = self._simple_trace()
        part = trace.slice(2, 5)
        assert len(part) == 3
        assert part.addr[0] == 2 * 64
        assert part.meta.name == "t"

    def test_concat(self):
        trace = self._simple_trace()
        joined = trace.concat(trace)
        assert len(joined) == 20
        assert joined.instructions == 2 * trace.instructions

    def test_records_iteration(self):
        trace = self._simple_trace()
        records = list(trace.records())
        assert records[0] == (7, AccessKind.LOAD, 0x100, 0, False)

    def test_kind_counts(self, builder):
        builder.ifetch(0x1)
        builder.load(0x2, 0x3)
        builder.load(0x2, 0x4)
        trace = builder.build()
        counts = trace.kind_counts()
        assert counts[AccessKind.IFETCH] == 1
        assert counts[AccessKind.LOAD] == 2
        assert counts[AccessKind.STORE] == 0

    def test_unique_lines(self, builder):
        builder.load(0x1, 0)
        builder.load(0x1, 32)  # same line
        builder.load(0x1, 64)
        assert builder.build().unique_lines() == 2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, builder):
        builder.meta.name = "roundtrip"
        builder.meta.cpi_perf = 1.37
        builder.meta.extra = {"k": 1}
        builder.load(0x10, 0x200, gap=3, serial=True)
        builder.ifetch(0x4000, gap=8)
        trace = builder.build()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == 2
        assert loaded.meta.name == "roundtrip"
        assert loaded.meta.cpi_perf == 1.37
        assert loaded.meta.extra == {"k": 1}
        np.testing.assert_array_equal(loaded.addr, trace.addr)
        np.testing.assert_array_equal(loaded.serial, trace.serial)


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 1 << 30),
                st.integers(0, 500),
                st.booleans(),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_builder_roundtrip(self, records):
        builder = TraceBuilder()
        for kind, addr, gap, serial in records:
            builder.add(kind, pc=0x1, addr=addr, gap=gap, serial=serial)
        trace = builder.build()
        assert len(trace) == len(records)
        assert trace.instructions == sum(r[2] for r in records)
        for i, (kind, addr, gap, serial) in enumerate(records):
            assert trace.kind[i] == kind
            assert trace.addr[i] == addr
            assert trace.gap[i] == gap
            assert bool(trace.serial[i]) == serial
