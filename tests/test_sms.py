"""Tests for Spatial Memory Streaming."""

from __future__ import annotations

from repro.memory.request import AccessKind
from repro.prefetchers.sms import SpatialMemoryStreaming

from tests.helpers import make_access


def access(pf: SpatialMemoryStreaming, line: int, pc=0x10, kind=AccessKind.LOAD):
    return pf.observe_access(make_access(line * 64, kind=kind, pc=pc), line, 0)


REGION_LINES = 32  # 2 KB regions of 64 B lines


def region_line(region: int, offset: int) -> int:
    return region * REGION_LINES + offset


class TestGenerations:
    def test_pattern_accumulated_and_stored(self):
        pf = SpatialMemoryStreaming(agt_entries=2)
        # Generation for region 0 triggered at offset 3 by pc 0x10.
        access(pf, region_line(0, 3))
        access(pf, region_line(0, 7))
        access(pf, region_line(0, 12))
        pf.flush_generations()
        # Re-trigger with the same (pc, offset): learned lines stream out.
        requests = access(pf, region_line(5, 3))
        targets = {r.line_addr for r in requests}
        assert targets == {region_line(5, 7), region_line(5, 12)}

    def test_trigger_key_includes_offset(self):
        pf = SpatialMemoryStreaming()
        access(pf, region_line(0, 3))
        access(pf, region_line(0, 7))
        pf.flush_generations()
        # Same PC, different trigger offset: no match.
        assert access(pf, region_line(6, 4)) == []

    def test_trigger_key_includes_pc(self):
        pf = SpatialMemoryStreaming()
        access(pf, region_line(0, 3), pc=0x10)
        access(pf, region_line(0, 7), pc=0x10)
        pf.flush_generations()
        assert access(pf, region_line(6, 3), pc=0x20) == []

    def test_generation_ends_on_agt_eviction(self):
        pf = SpatialMemoryStreaming(agt_entries=1)
        access(pf, region_line(0, 1))
        access(pf, region_line(0, 2))
        access(pf, region_line(9, 0))  # evicts region 0's generation -> PHT
        requests = access(pf, region_line(3, 1))
        assert {r.line_addr for r in requests} == {region_line(3, 2)}

    def test_accesses_within_live_generation_do_not_probe(self):
        pf = SpatialMemoryStreaming()
        access(pf, region_line(0, 1))
        assert access(pf, region_line(0, 5)) == []  # accumulation only


class TestPrefetchShape:
    def test_up_to_region_size_prefetches(self):
        pf = SpatialMemoryStreaming(agt_entries=1)
        for offset in range(REGION_LINES):
            access(pf, region_line(0, offset))
        # End the generation with an unrelated trigger (different PC) so
        # the new generation's sparse pattern doesn't overwrite the key.
        access(pf, region_line(9, 0), pc=0x99)
        requests = access(pf, region_line(4, 0))
        assert len(requests) == REGION_LINES - 1  # all lines except trigger

    def test_ignores_stores_and_ifetches(self):
        pf = SpatialMemoryStreaming()
        assert access(pf, region_line(0, 1), kind=AccessKind.STORE) == []
        assert access(pf, region_line(0, 2), kind=AccessKind.IFETCH) == []
        assert not pf.targets_instructions

    def test_onchip_timing(self):
        pf = SpatialMemoryStreaming()
        access(pf, region_line(0, 3))
        access(pf, region_line(0, 4))
        pf.flush_generations()
        requests = access(pf, region_line(2, 3))
        assert all(r.epochs_until_ready == 1 for r in requests)


class TestCost:
    def test_storage_estimate_matches_paper(self):
        pf = SpatialMemoryStreaming()
        # Paper: ~128 KB PHT for 16K entries.
        assert 100 * 1024 <= pf.onchip_storage_bytes <= 200 * 1024

    def test_rejects_bad_region(self):
        import pytest

        with pytest.raises(ValueError):
            SpatialMemoryStreaming(region_bytes=100, line_bytes=64)
