"""Tests for the synthetic commercial workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.request import AccessKind
from repro.workloads.commercial import PROFILES, build_commercial_trace
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload


class TestProfiles:
    def test_all_four_paper_workloads_present(self):
        assert set(COMMERCIAL_WORKLOADS) == set(PROFILES)
        assert set(PROFILES) == {"database", "tpcw", "specjbb2005", "jappserver2004"}

    def test_cpi_perf_derived_from_table1(self):
        # database: (3.27 - 4.07e-3 * 500) / 0.9
        assert PROFILES["database"].cpi_perf == pytest.approx(
            (3.27 - 4.07 / 1000 * 500) / 0.9
        )

    def test_qualitative_traits(self):
        p = PROFILES
        # TPC-W is the least predictable workload.
        assert p["tpcw"].variant_prob == max(w.variant_prob for w in p.values())
        # SPECjbb2005 has the smallest instruction-miss footprint.
        assert p["specjbb2005"].code_lines == min(w.code_lines for w in p.values())
        # Database is load-miss dominated with deep chases.
        assert p["database"].chase_depth >= 3


class TestGeneration:
    def test_deterministic_in_seed(self):
        a = build_commercial_trace("database", records=5000, seed=3)
        b = build_commercial_trace("database", records=5000, seed=3)
        np.testing.assert_array_equal(a.addr, b.addr)
        np.testing.assert_array_equal(a.gap, b.gap)

    def test_different_seeds_differ(self):
        a = build_commercial_trace("database", records=5000, seed=3)
        b = build_commercial_trace("database", records=5000, seed=4)
        assert not np.array_equal(a.addr, b.addr)

    def test_exact_record_count(self):
        trace = build_commercial_trace("tpcw", records=4321, seed=1)
        assert len(trace) == 4321

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build_commercial_trace("nosuch")

    def test_metadata(self):
        trace = build_commercial_trace("specjbb2005", records=2000, seed=1)
        assert trace.meta.name == "specjbb2005"
        assert trace.meta.cpi_perf == PROFILES["specjbb2005"].cpi_perf
        assert "n_templates" in trace.meta.extra

    def test_contains_all_access_kinds(self):
        trace = build_commercial_trace("database", records=30_000, seed=1)
        counts = trace.kind_counts()
        assert counts[AccessKind.IFETCH] > 0
        assert counts[AccessKind.LOAD] > counts[AccessKind.IFETCH]
        assert counts[AccessKind.STORE] > 0

    def test_contains_serial_dependences(self):
        trace = build_commercial_trace("database", records=30_000, seed=1)
        assert trace.serial.sum() > 0

    def test_footprint_exceeds_scaled_l2(self):
        """The working set must thrash a 256 KB (4096-line) L2."""
        trace = build_commercial_trace("database", records=60_000, seed=1)
        assert trace.unique_lines() > 3 * 4096

    def test_scale_grows_footprint(self):
        small = build_commercial_trace("database", records=30_000, seed=1, scale=1.0)
        big = build_commercial_trace("database", records=30_000, seed=1, scale=2.0)
        assert big.unique_lines() > small.unique_lines()

    def test_miss_sequences_recur(self):
        """The property correlation prefetching needs: transaction miss
        sequences repeat across the trace."""
        trace = build_commercial_trace("specjbb2005", records=120_000, seed=1)
        addrs = trace.addr[trace.kind == 1]
        # Count 3-grams of the load-address stream that appear twice.
        trigrams = {}
        sample = addrs[:: max(1, len(addrs) // 40_000)]
        for i in range(len(sample) - 2):
            key = (int(sample[i]), int(sample[i + 1]), int(sample[i + 2]))
            trigrams[key] = trigrams.get(key, 0) + 1
        repeats = sum(1 for c in trigrams.values() if c >= 2)
        assert repeats > 0


class TestRegistry:
    def test_make_workload_caches(self):
        a = make_workload("tpcw", records=3000, seed=9)
        b = make_workload("tpcw", records=3000, seed=9)
        assert a is b  # memoised

    def test_make_workload_synthetic(self):
        trace = make_workload("pointer_chase", records=1000)
        assert trace.meta.name == "pointer_chase"

    def test_make_workload_unknown(self):
        with pytest.raises(KeyError):
            make_workload("nope")

    def test_commercial_rejects_extra_kwargs(self):
        with pytest.raises(TypeError):
            make_workload("database", streams=4)
