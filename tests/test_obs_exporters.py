"""Tests for the trace exporters and the per-run manifest."""

from __future__ import annotations

import io
import json

import pytest

from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.obs import (
    ChromeTraceExporter,
    EpochClosed,
    EventBus,
    JsonlTraceWriter,
    PhaseTimer,
    RunManifest,
    read_jsonl,
)
from repro.obs.events import TableRead
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import make_workload


def observed_run(workload="database", records=6_000, seed=3, prefetcher="ebcp", **attach):
    """Run a small simulation with the given exporters attached."""
    trace = make_workload(workload, records=records, seed=seed)
    bus = EventBus()
    sinks = {name: factory(bus) for name, factory in attach.items()}
    sim = EpochSimulator(
        ProcessorConfig.scaled(),
        build_prefetcher(prefetcher) if prefetcher != "none" else None,
        cpi_perf=trace.meta.cpi_perf,
        overlap=trace.meta.overlap,
        bus=bus,
    )
    result = sim.run(trace, warmup_records=0)
    return result, bus, sinks


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        result, _, sinks = observed_run(
            writer=lambda bus: JsonlTraceWriter(path, bus)
        )
        sinks["writer"].close()
        records = read_jsonl(path)
        assert len(records) == sinks["writer"].events_written
        # seq is a gapless 0..n-1 emission order.
        assert [r["seq"] for r in records] == list(range(len(records)))
        closes = [r for r in records if r["event"] == "EpochClosed"]
        assert len(closes) == result.stats.epochs
        # The flattened payloads carry the derived fields.
        assert all("mlp" in r for r in closes)

    def test_file_like_target_not_closed(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        writer.write_event(TableRead(nbytes=64, purpose="lookup"))
        writer.close()
        assert not buffer.closed
        record = json.loads(buffer.getvalue())
        assert record == {"event": "TableRead", "nbytes": 64, "purpose": "lookup", "seq": 0}

    def test_context_manager_detaches(self, tmp_path):
        bus = EventBus()
        with JsonlTraceWriter(tmp_path / "t.jsonl", bus):
            assert bus.active
        assert not bus.active


class TestChromeTrace:
    def test_valid_trace_document(self, tmp_path):
        result, _, sinks = observed_run(chrome=ChromeTraceExporter)
        doc = sinks["chrome"].to_dict()
        # Survives a JSON round-trip and has the trace-event envelope.
        doc = json.loads(json.dumps(doc))
        assert isinstance(doc["traceEvents"], list)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == result.stats.epochs
        for event in slices[:50]:
            assert event["dur"] > 0
            assert {"ts", "pid", "tid", "name", "args"} <= set(event)

    def test_slices_are_ordered_and_named(self):
        _, _, sinks = observed_run(records=4_000, chrome=ChromeTraceExporter)
        slices = [e for e in sinks["chrome"].trace_events if e.get("ph") == "X"]
        timestamps = [e["ts"] for e in slices]
        assert timestamps == sorted(timestamps)
        assert slices[0]["name"] == "epoch 0"

    def test_write_and_reload(self, tmp_path):
        _, _, sinks = observed_run(records=4_000, chrome=ChromeTraceExporter)
        path = sinks["chrome"].write(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "repro-ebcp" for e in metadata)

    def test_detach(self):
        bus = EventBus()
        exporter = ChromeTraceExporter(bus)
        exporter.detach()
        assert not bus.active


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.seconds) == {"a", "b"}
        assert timer.seconds["a"] >= 0.0


class TestManifest:
    @staticmethod
    def build_manifest(seed: int) -> RunManifest:
        manifest = RunManifest("database", "ebcp", 5_000, seed)
        trace = make_workload("database", records=5_000, seed=seed)
        bus = EventBus()
        manifest.count_events(bus)
        sim = EpochSimulator(
            ProcessorConfig.scaled(),
            build_prefetcher("ebcp"),
            cpi_perf=trace.meta.cpi_perf,
            overlap=trace.meta.overlap,
            bus=bus,
        )
        with manifest.phase("simulate"):
            result = sim.run(trace, warmup_records=0)
        manifest.config_summary = dict(result.config_summary)
        manifest.record_result(result.to_dict())
        return manifest

    def test_deterministic_under_fixed_seed(self):
        first = self.build_manifest(seed=11).deterministic_dict()
        second = self.build_manifest(seed=11).deterministic_dict()
        assert first == second
        # ... and it really is JSON (no exotic types slipped in).
        json.dumps(first)

    def test_different_seed_changes_result(self):
        first = self.build_manifest(seed=11).deterministic_dict()
        second = self.build_manifest(seed=12).deterministic_dict()
        assert first != second

    def test_event_counts_match_stats(self):
        manifest = self.build_manifest(seed=11)
        assert manifest.event_counts["EpochClosed"] == manifest.result["epochs"]

    def test_wall_section_excluded_from_deterministic_view(self):
        manifest = self.build_manifest(seed=11)
        assert "wall" in manifest.to_dict()
        assert "wall" not in manifest.deterministic_dict()
        assert "simulate" in manifest.to_dict()["wall"]["phases_seconds"]

    def test_write(self, tmp_path):
        manifest = RunManifest("w", "p", 10, 1)
        manifest.extra["note"] = "x"
        path = manifest.write(tmp_path / "manifest.json")
        doc = json.loads(path.read_text())
        assert doc["run"]["workload"] == "w"
        assert doc["extra"]["note"] == "x"
