"""Plain helper functions shared across test modules."""

from __future__ import annotations

from repro.memory.request import Access, AccessKind


def make_access(
    addr: int,
    kind: AccessKind = AccessKind.LOAD,
    pc: int = 0x1000,
    serial: bool = False,
    inst_index: int = 0,
) -> Access:
    return Access(kind=kind, pc=pc, addr=addr, serial=serial, inst_index=inst_index)


def line_addr(line: int, line_size: int = 64) -> int:
    """Byte address of a line number."""
    return line * line_size
