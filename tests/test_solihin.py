"""Tests for Solihin's memory-side correlation prefetcher."""

from __future__ import annotations

from repro.engine.config import ProcessorConfig
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.request import AccessKind
from repro.prefetchers.solihin import SolihinPrefetcher, make_solihin_3_2, make_solihin_6_1

from tests.helpers import make_access


def make_pf(**kwargs) -> SolihinPrefetcher:
    pf = SolihinPrefetcher(table_entries=kwargs.pop("table_entries", 256), **kwargs)
    pf.bind(CacheHierarchy(ProcessorConfig.scaled()))
    return pf


def feed(pf: SolihinPrefetcher, lines: list[int], kind=AccessKind.LOAD):
    requests = []
    for line in lines:
        requests.extend(
            pf.observe_offchip_miss(make_access(line * 64, kind=kind), line, None, False)
        )
    return requests


class TestTraining:
    def test_successors_recorded_by_depth(self):
        pf = make_pf(depth=3, width=2)
        feed(pf, [1, 2, 3, 4])
        entry = pf._table[pf._index(1)]
        assert entry.tag == 1
        assert entry.levels[0] == [2]
        assert entry.levels[1] == [3]
        assert entry.levels[2] == [4]

    def test_width_keeps_alternatives_mru_first(self):
        pf = make_pf(depth=1, width=2)
        feed(pf, [1, 2])
        feed(pf, [1, 3])
        entry = pf._table[pf._index(1)]
        assert entry.levels[0] == [3, 2]

    def test_width_lru_eviction(self):
        pf = make_pf(depth=1, width=2)
        for succ in (2, 3, 4):
            feed(pf, [1, succ])
        entry = pf._table[pf._index(1)]
        assert entry.levels[0] == [4, 3]

    def test_repeat_successor_moves_to_mru(self):
        pf = make_pf(depth=1, width=2)
        feed(pf, [1, 2])
        feed(pf, [1, 3])
        feed(pf, [1, 2])
        entry = pf._table[pf._index(1)]
        assert entry.levels[0] == [2, 3]


class TestPrediction:
    def test_predicts_recorded_successors(self):
        pf = make_pf(depth=3, width=1)
        feed(pf, [1, 2, 3, 4])
        requests = feed(pf, [1])
        assert {r.line_addr for r in requests} == {2, 3, 4}

    def test_memory_table_timing(self):
        pf = make_pf(depth=2, width=1)
        feed(pf, [1, 2, 3])
        requests = feed(pf, [1])
        assert all(r.epochs_until_ready == 2 for r in requests)

    def test_degree_cap(self):
        pf = make_pf(depth=3, width=2, degree=2)
        for tail in ([2, 3, 4], [5, 6, 7]):
            feed(pf, [1] + tail)
        requests = feed(pf, [1])
        assert len(requests) == 2

    def test_every_miss_looks_up(self):
        pf = make_pf(depth=1, width=1)
        feed(pf, [1, 2, 1, 2])
        requests = feed(pf, [1, 2])
        targets = [r.line_addr for r in requests]
        assert 2 in targets and 1 in targets

    def test_blind_to_prefetch_hits(self):
        """The memory-side engine cannot see on-chip prefetch-buffer
        hits: averted misses neither train nor trigger lookups."""
        pf = make_pf(depth=1, width=1)
        feed(pf, [1])
        requests = pf.observe_prefetch_hit(make_access(2 * 64), 2, None, 0, False)
        assert requests == []
        entry = pf._table[pf._index(1)]
        assert entry is None or entry.tag != 1 or entry.levels == [] or entry.levels[0] == []


class TestCostAndTraffic:
    def test_table_traffic_per_miss(self):
        pf = make_pf(depth=1, width=1)
        pf.traffic.drain()
        feed(pf, [1])
        lookup_r, update_r, update_w, _ = pf.traffic.drain()
        assert lookup_r == 64 and update_r == 64 and update_w == 64

    def test_memory_footprint(self):
        pf = SolihinPrefetcher(table_entries=1024)
        assert pf.memory_table_bytes == 1024 * 64
        assert pf.onchip_storage_bytes == 0

    def test_inactive_without_memory(self):
        pf = SolihinPrefetcher(table_entries=256)
        # Never bound: the near-memory engine has no table region.
        assert feed(pf, [1, 2, 1]) == []

    def test_factory_names(self):
        assert make_solihin_3_2().name == "solihin_3_2"
        assert make_solihin_6_1().name == "solihin_6_1"
        assert make_solihin_3_2().degree == 6
        assert make_solihin_6_1().depth == 6 and make_solihin_6_1().width == 1

    def test_targets_instructions(self):
        pf = make_pf(depth=1, width=1)
        feed(pf, [1, 2], kind=AccessKind.IFETCH)
        assert pf._table[pf._index(1)] is not None
        assert pf.targets_instructions
