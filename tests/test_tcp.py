"""Tests for the Tag Correlating Prefetcher."""

from __future__ import annotations

from repro.memory.request import AccessKind
from repro.prefetchers.tcp import TagCorrelatingPrefetcher, make_tcp_large, make_tcp_small

from tests.helpers import make_access

import pytest


def feed(pf: TagCorrelatingPrefetcher, lines: list[int], kind=AccessKind.LOAD):
    requests = []
    for line in lines:
        requests.extend(
            pf.observe_access(make_access(line * 64, kind=kind), line, 0)
        )
    return requests


def compose(tag: int, cache_set: int, l1_sets: int = 128) -> int:
    return tag * l1_sets + cache_set


class TestTagCorrelation:
    def test_learns_recurring_tag_sequence(self):
        pf = TagCorrelatingPrefetcher(degree=1)
        seq = [compose(t, cache_set=5) for t in (1, 2, 3)]
        feed(pf, seq)  # learn (1,2)->3
        requests = feed(pf, [compose(1, 5), compose(2, 5)])
        assert {r.line_addr for r in requests} == {compose(3, 5)}

    def test_tag_pattern_shared_across_sets(self):
        """The whole point of TCP: a tag sequence learned in one set
        predicts in another set."""
        pf = TagCorrelatingPrefetcher(degree=1)
        feed(pf, [compose(t, cache_set=5) for t in (1, 2, 3)])
        requests = feed(pf, [compose(1, 9), compose(2, 9)])
        assert {r.line_addr for r in requests} == {compose(3, 9)}

    def test_chained_predictions_up_to_degree(self):
        pf = TagCorrelatingPrefetcher(degree=3)
        feed(pf, [compose(t, 0) for t in (1, 2, 3, 4, 5)])
        requests = feed(pf, [compose(1, 7), compose(2, 7)])
        assert {r.line_addr for r in requests} == {compose(t, 7) for t in (3, 4, 5)}

    def test_chain_stops_at_cycle(self):
        pf = TagCorrelatingPrefetcher(degree=8)
        # 1,2 -> 1 ; 2,1 -> 2 : a 2-cycle in tag space.
        feed(pf, [compose(t, 0) for t in (1, 2, 1, 2, 1)])
        requests = feed(pf, [compose(1, 3), compose(2, 3)])
        # Chain must terminate once a predicted tag repeats.
        assert len(requests) <= 8
        assert len({r.line_addr for r in requests}) == len(requests)

    def test_no_prediction_with_unseen_history(self):
        pf = TagCorrelatingPrefetcher()
        feed(pf, [compose(t, 0) for t in (1, 2, 3)])
        assert feed(pf, [compose(7, 1), compose(8, 1)]) == []


class TestScope:
    def test_ignores_instruction_misses(self):
        pf = TagCorrelatingPrefetcher()
        assert feed(pf, [compose(t, 0) for t in (1, 2, 3, 1, 2)],
                    kind=AccessKind.IFETCH) == []
        assert not pf.targets_instructions

    def test_onchip_timing(self):
        pf = TagCorrelatingPrefetcher(degree=1)
        feed(pf, [compose(t, 0) for t in (1, 2, 3)])
        requests = feed(pf, [compose(1, 2), compose(2, 2)])
        assert all(r.epochs_until_ready == 1 for r in requests)


class TestCapacity:
    def test_pht_way_lru(self):
        pf = TagCorrelatingPrefetcher(pht_sets=1, pht_ways=2, degree=1)
        feed(pf, [compose(t, 0) for t in (1, 2, 3)])  # (1,2)->3
        feed(pf, [compose(t, 1) for t in (4, 5, 6)])  # (4,5)->6
        feed(pf, [compose(t, 2) for t in (7, 8, 9)])  # evicts (1,2)
        assert feed(pf, [compose(1, 3), compose(2, 3)]) == []
        requests = feed(pf, [compose(7, 4), compose(8, 4)])
        assert {r.line_addr for r in requests} == {compose(9, 4)}

    def test_configs(self):
        small, large = make_tcp_small(), make_tcp_large()
        assert small.name == "tcp_small" and large.name == "tcp_large"
        # Paper sizes divided by the capacity scale factor (8).
        assert small.onchip_storage_bytes < 300 * 1024 // 8 + 4096
        assert large.onchip_storage_bytes > 4 * 1024 * 1024 // 8 * 0.9
        assert make_tcp_large(scale=1).onchip_storage_bytes > 4 * 1024 * 1024 * 0.9

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TagCorrelatingPrefetcher(l1_sets=100)
        with pytest.raises(ValueError):
            TagCorrelatingPrefetcher(pht_sets=0)
