"""Tests for the prefetch buffer (timeliness, LRU, lifecycle)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.prefetch_buffer import PrefetchBuffer


def make_buffer(entries=64, ways=4):
    return PrefetchBuffer(entries, ways)


class TestGeometry:
    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(10, 4)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(24, 4)

    def test_ways_clamped_to_entries(self):
        buf = PrefetchBuffer(2, 4)
        assert buf.ways == 2


class TestTimeliness:
    def test_ready_entry_hits_and_is_removed(self):
        buf = make_buffer()
        buf.fill(10, ready_cycle=100.0)
        result = buf.lookup(10, current_cycle=150.0)
        assert result.hit and not result.late
        assert not buf.contains(10)
        assert buf.stats.hits == 1

    def test_late_entry_does_not_hit(self):
        buf = make_buffer()
        buf.fill(10, ready_cycle=1000.0)
        result = buf.lookup(10, current_cycle=500.0)
        assert not result.hit and result.late
        assert buf.contains(10)  # stays for a later access
        assert buf.stats.late_hits == 1

    def test_exactly_ready_at_boundary(self):
        buf = make_buffer()
        buf.fill(10, ready_cycle=100.0)
        assert buf.lookup(10, current_cycle=100.0).hit

    def test_late_then_ready(self):
        buf = make_buffer()
        buf.fill(10, ready_cycle=100.0)
        assert not buf.lookup(10, 50.0).hit
        assert buf.lookup(10, 120.0).hit

    def test_absent_line(self):
        result = make_buffer().lookup(99, 1e9)
        assert not result.hit and not result.late and result.entry is None


class TestFill:
    def test_refill_takes_earliest_readiness(self):
        buf = make_buffer()
        buf.fill(10, ready_cycle=500.0)
        buf.fill(10, ready_cycle=300.0)
        assert buf.peek(10).ready_cycle == 300.0
        buf.fill(10, ready_cycle=900.0)  # never delays
        assert buf.peek(10).ready_cycle == 300.0

    def test_refill_counts_once(self):
        buf = make_buffer()
        buf.fill(10, 0.0)
        buf.fill(10, 0.0)
        assert buf.stats.fills == 1
        assert buf.occupancy == 1

    def test_fill_carries_metadata(self):
        buf = make_buffer()
        buf.fill(10, 0.0, table_index=42, source="ebcp")
        entry = buf.peek(10)
        assert entry.table_index == 42
        assert entry.source == "ebcp"

    def test_lru_eviction_within_set(self):
        buf = PrefetchBuffer(4, 4)  # single set
        for line in range(4):
            buf.fill(line, 0.0)
        buf.peek(0)  # peek does NOT refresh LRU
        victim = buf.fill(100, 0.0)
        assert victim.line == 0  # oldest fill evicted
        assert buf.stats.evictions == 1
        assert buf.stats.evicted_unused == 1

    def test_used_entries_not_counted_unused_on_eviction(self):
        buf = PrefetchBuffer(4, 4)
        buf.fill(0, 0.0)
        buf.lookup(0, 10.0)  # consume (removes)
        for line in range(1, 6):
            buf.fill(line, 0.0)
        assert buf.stats.evicted_unused == buf.stats.evictions


class TestInvalidate:
    def test_invalidate_removes(self):
        buf = make_buffer()
        buf.fill(10, 0.0)
        assert buf.invalidate(10)
        assert not buf.contains(10)
        assert not buf.invalidate(10)

    def test_peek_has_no_side_effects(self):
        buf = make_buffer()
        buf.fill(10, 0.0)
        hits_before = buf.stats.hits
        assert buf.peek(10) is not None
        assert buf.peek(11) is None
        assert buf.stats.hits == hits_before
        assert buf.contains(10)

    def test_flush(self):
        buf = make_buffer()
        for line in range(10):
            buf.fill(line, 0.0)
        buf.flush()
        assert buf.occupancy == 0


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, lines):
        buf = PrefetchBuffer(16, 4)
        for line in lines:
            buf.fill(line, 0.0)
        assert buf.occupancy <= 16

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.floats(0, 1000, allow_nan=False)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_hit_implies_was_filled_and_ready(self, ops):
        buf = PrefetchBuffer(64, 4)
        filled: dict[int, float] = {}
        for line, cycle in ops:
            if line % 2 == 0:
                buf.fill(line, cycle)
                filled[line] = min(filled.get(line, float("inf")), cycle)
            else:
                result = buf.lookup(line, cycle)
                if result.hit:
                    assert filled.get(line, float("inf")) <= cycle
