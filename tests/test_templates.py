"""Tests for transaction templates."""

from __future__ import annotations

import numpy as np

from repro.workloads.patterns import Region
from repro.workloads.templates import EPOCH_SPLIT_GAP, Op, TransactionTemplate
from repro.workloads.trace import TraceBuilder


def emit(template: TransactionTemplate, seed=1, variant_prob=0.0, cold=None):
    builder = TraceBuilder()
    template.emit(builder, np.random.default_rng(seed), variant_prob, cold)
    return builder.build()


class TestEmission:
    def test_code_op_emits_ifetches(self):
        template = TransactionTemplate(0, [Op("code", pc=0x1, addrs=(0x1000, 0x1040))])
        trace = emit(template)
        assert list(trace.kind) == [0, 0]
        assert trace.pc[0] == trace.addr[0] == 0x1000

    def test_chase_op_marks_serial(self):
        template = TransactionTemplate(0, [Op("chase", pc=0x1, addrs=(0x100, 0x200))])
        trace = emit(template)
        assert all(trace.serial)
        assert all(k == 1 for k in trace.kind)

    def test_burst_op_overlaps(self):
        template = TransactionTemplate(
            0, [Op("burst", pc=0x1, addrs=(0x100, 0x200, 0x300))]
        )
        trace = emit(template)
        assert trace.gap[0] >= EPOCH_SPLIT_GAP
        assert trace.gap[1] < 64 and trace.gap[2] < 64  # within ROB window
        assert not any(trace.serial)

    def test_store_op(self):
        template = TransactionTemplate(0, [Op("store", pc=0x1, addrs=(0x100,))])
        trace = emit(template)
        assert list(trace.kind) == [2]

    def test_cold_op_draws_fresh_addresses(self):
        cold = Region("cold", base=0x10000, lines=1 << 16)
        template = TransactionTemplate(0, [Op("cold", pc=0x1, n=5)])
        first = emit(template, seed=1, cold=cold)
        second = emit(template, seed=2, cold=cold)
        assert set(first.addr) != set(second.addr)
        assert all(cold.contains(int(a)) for a in first.addr)

    def test_cold_without_region_raises(self):
        import pytest

        template = TransactionTemplate(0, [Op("cold", pc=0x1, n=1)])
        with pytest.raises(ValueError):
            emit(template)

    def test_unknown_op_kind_raises(self):
        import pytest

        template = TransactionTemplate(0, [Op("bogus", pc=0x1, addrs=(1,))])
        with pytest.raises(ValueError):
            emit(template)

    def test_tail_pad_extends_instructions(self):
        op = Op("burst", pc=0x1, addrs=(0x100,))
        bare = TransactionTemplate(0, [op])
        padded = TransactionTemplate(0, [op], tail_pad=500)
        builder = TraceBuilder()
        padded.emit(builder, np.random.default_rng(1), 0.0, None)
        # Pad lands on the next record; emit another op to capture it.
        padded2 = TransactionTemplate(0, [op], tail_pad=500)
        b2 = TraceBuilder()
        padded2.emit(b2, np.random.default_rng(1), 0.0, None)
        padded2.emit(b2, np.random.default_rng(1), 0.0, None)
        t2 = b2.build()
        assert t2.gap[1] == emit(bare).gap[0] + 500


class TestVariants:
    def test_variant_substitution(self):
        op = Op("burst", pc=0x1, addrs=(0x100, 0x200), variants=((0x100, 0x900),))
        template = TransactionTemplate(0, [op])
        main = emit(template, variant_prob=0.0)
        alt = emit(template, variant_prob=1.0)
        assert list(main.addr) == [0x100, 0x200]
        assert list(alt.addr) == [0x100, 0x900]

    def test_determinism_given_seed(self):
        op = Op("burst", pc=0x1, addrs=(0x100, 0x200), variants=((0x100, 0x900),))
        template = TransactionTemplate(0, [op])
        a = emit(template, seed=42, variant_prob=0.5)
        b = emit(template, seed=42, variant_prob=0.5)
        assert list(a.addr) == list(b.addr)


class TestAccounting:
    def test_instruction_cost_matches_emission(self):
        ops = [
            Op("code", pc=0x1, addrs=(0x1000, 0x1040), step_gap=40),
            Op("chase", pc=0x2, addrs=(0x100, 0x200, 0x300)),
            Op("burst", pc=0x3, addrs=(0x400, 0x500)),
            Op("hot", pc=0x4, addrs=(0x600, 0x640), step_gap=10),
        ]
        template = TransactionTemplate(0, ops, tail_pad=0)
        trace = emit(template)
        assert trace.instructions == template.instruction_cost()

    def test_fixed_lines(self):
        op = Op("burst", pc=0x1, addrs=(0x100, 0x200), variants=((0x100, 0x900),))
        template = TransactionTemplate(0, [op])
        assert template.fixed_lines() == {0x100 >> 6, 0x200 >> 6, 0x900 >> 6}
