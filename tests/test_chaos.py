"""CI chaos drill: full-stack recovery under injected faults.

Gated behind ``REPRO_CHAOS=1`` (the CI workflow runs it as a dedicated
step) because it deliberately crashes pool workers and corrupts cache
entries.  Each scenario drives the real public stack — sweep runner,
executor, on-disk caches — under ``REPRO_FAULT_*`` injection and asserts
the end state is bit-identical to an undisturbed run.
"""

from __future__ import annotations

import os

import pytest

import repro.resilience.faults as faults_mod
from repro.analysis.sweep import SweepRunner
from repro.engine.config import ProcessorConfig
from repro.obs.bus import global_bus, reset_global_bus
from repro.obs.events import CacheQuarantined
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.resilience import ExecutionPolicy, FaultSpec, verify_checksum

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS") != "1",
    reason="chaos drill; opt in with REPRO_CHAOS=1",
)

RECORDS = 3_000


@pytest.fixture(autouse=True)
def _fresh_fault_claims():
    faults_mod._LOCAL_CLAIMS.clear()
    yield
    faults_mod._LOCAL_CLAIMS.clear()


def test_sweep_survives_worker_crashes(tmp_path, monkeypatch):
    """Every pool worker crashes once; the sweep result is unchanged."""
    monkeypatch.setenv("REPRO_FORCE_POOL", "1")
    config = ProcessorConfig.scaled()
    labels = ["2", "4"]

    def factory(label):
        return build_prefetcher("ebcp", prefetch_degree=int(label))

    clean = SweepRunner(records=RECORDS, workloads=("tpcw",)).sweep(
        labels, factory, config=config
    )
    policy = ExecutionPolicy(
        jobs=2,
        retries=2,
        backoff_s=0.0,
        checkpoint_dir=str(tmp_path / "run"),
        fault_spec=FaultSpec(
            crash="*:1", state_dir=str(tmp_path / "fault-state")
        ),
    )
    chaotic = SweepRunner(records=RECORDS, workloads=("tpcw",)).sweep(
        labels, factory, config=config, policy=policy
    )
    for seq, par in zip(clean["tpcw"], chaotic["tpcw"]):
        assert seq.label == par.label
        assert seq.result.stats.to_dict() == par.result.stats.to_dict()
        assert seq.baseline.stats.to_dict() == par.baseline.stats.to_dict()


def test_runs_survive_cache_corruption(tmp_path, monkeypatch):
    """Every fresh cache entry is corrupted twice; results never waver."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_FAULT_CORRUPT", "*:2")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
    reset_global_bus()
    quarantined = []
    global_bus().subscribe(CacheQuarantined, quarantined.append)

    def specs():
        return [
            JobSpec(
                workload="specjbb2005",
                records=21_000,
                seed=13,
                config=ProcessorConfig.scaled(),
                prefetcher=build_prefetcher("ebcp"),
                label="ebcp",
            )
        ]

    from repro.workloads.registry import _cached_commercial

    try:
        runs = []
        for _ in range(3):
            # Drop the in-process trace memo (and with it the in-memory
            # filter plane) so every run goes back to the disk cache.
            _cached_commercial.cache_clear()
            runs.append(run_jobs(specs())[0].stats.to_dict())
    finally:
        reset_global_bus()
    assert runs[0] == runs[1] == runs[2]
    assert len(quarantined) >= 2  # corrupt entries were detected, not used
    # The cache converged to intact entries once the fault budget ran out.
    cache_dir = tmp_path / "cache"
    surviving = [
        p
        for p in cache_dir.rglob("*.npz")
        if "quarantine" not in p.parts
    ]
    assert surviving
    for entry in surviving:
        assert verify_checksum(entry) is None
