"""CI chaos drill: full-stack recovery under injected faults.

Gated behind ``REPRO_CHAOS=1`` (the CI workflow runs it as a dedicated
step) because it deliberately crashes pool workers and corrupts cache
entries.  Each scenario drives the real public stack — sweep runner,
executor, on-disk caches — under ``REPRO_FAULT_*`` injection and asserts
the end state is bit-identical to an undisturbed run.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.resilience.faults as faults_mod
from repro.analysis.sweep import SweepRunner
from repro.engine.config import ProcessorConfig
from repro.obs.bus import global_bus, reset_global_bus
from repro.obs.events import CacheQuarantined
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.resilience import ExecutionPolicy, FaultSpec, verify_checksum

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS") != "1",
    reason="chaos drill; opt in with REPRO_CHAOS=1",
)

RECORDS = 3_000


@pytest.fixture(autouse=True)
def _fresh_fault_claims():
    faults_mod._LOCAL_CLAIMS.clear()
    yield
    faults_mod._LOCAL_CLAIMS.clear()


def test_sweep_survives_worker_crashes(tmp_path, monkeypatch):
    """Every pool worker crashes once; the sweep result is unchanged."""
    monkeypatch.setenv("REPRO_FORCE_POOL", "1")
    config = ProcessorConfig.scaled()
    labels = ["2", "4"]

    def factory(label):
        return build_prefetcher("ebcp", prefetch_degree=int(label))

    clean = SweepRunner(records=RECORDS, workloads=("tpcw",)).sweep(
        labels, factory, config=config
    )
    policy = ExecutionPolicy(
        jobs=2,
        retries=2,
        backoff_s=0.0,
        checkpoint_dir=str(tmp_path / "run"),
        fault_spec=FaultSpec(
            crash="*:1", state_dir=str(tmp_path / "fault-state")
        ),
    )
    chaotic = SweepRunner(records=RECORDS, workloads=("tpcw",)).sweep(
        labels, factory, config=config, policy=policy
    )
    for seq, par in zip(clean["tpcw"], chaotic["tpcw"]):
        assert seq.label == par.label
        assert seq.result.stats.to_dict() == par.result.stats.to_dict()
        assert seq.baseline.stats.to_dict() == par.baseline.stats.to_dict()


def test_runs_survive_cache_corruption(tmp_path, monkeypatch):
    """Every fresh cache entry is corrupted twice; results never waver."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_FAULT_CORRUPT", "*:2")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
    reset_global_bus()
    quarantined = []
    global_bus().subscribe(CacheQuarantined, quarantined.append)

    def specs():
        return [
            JobSpec(
                workload="specjbb2005",
                records=21_000,
                seed=13,
                config=ProcessorConfig.scaled(),
                prefetcher=build_prefetcher("ebcp"),
                label="ebcp",
            )
        ]

    from repro.workloads.registry import _cached_commercial

    try:
        runs = []
        for _ in range(3):
            # Drop the in-process trace memo (and with it the in-memory
            # filter plane) so every run goes back to the disk cache.
            _cached_commercial.cache_clear()
            runs.append(run_jobs(specs())[0].stats.to_dict())
    finally:
        reset_global_bus()
    assert runs[0] == runs[1] == runs[2]
    assert len(quarantined) >= 2  # corrupt entries were detected, not used
    # The cache converged to intact entries once the fault budget ran out.
    cache_dir = tmp_path / "cache"
    surviving = [
        p
        for p in cache_dir.rglob("*.npz")
        if "quarantine" not in p.parts
    ]
    assert surviving
    for entry in surviving:
        assert verify_checksum(entry) is None


def test_shard_sigkill_recovery_drill(tmp_path):
    """SIGKILL one shard of a live CLI fleet under concurrent load.

    The full supervision story, end to end through the real console
    entry point: the supervisor respawns the victim under its shard id
    (new pid, ring untouched), concurrent clients ride out the window on
    retryable errors with zero permanently failed calls, the reborn
    shard answers its old keys bit-identically — warm from the shared
    disk tier — and the fleet still drains gracefully.
    """
    from repro.service import ServiceClient

    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--workers", "2", "--cache-dir", str(tmp_path / "tier"),
            "--heartbeat-s", "0.25", "-j", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout is not None
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"no ready sentinel in {line!r}"
        host, port = match.group(1), int(match.group(2))
        seeds = range(6)

        with ServiceClient(host, port, timeout_s=120.0, retries=0) as c:
            baseline = {}
            owners = {}
            for seed in seeds:
                served = c.simulate("pointer_chase", "none",
                                    records=RECORDS, seed=seed)
                baseline[seed] = served.result.to_dict()
                owners[seed] = served.shard
            victim = owners[0]["index"]
            victim_pid = owners[0]["pid"]

        failures = []

        def hammer(worker: int) -> None:
            try:
                with ServiceClient(
                    host, port, timeout_s=120.0, retries=15, backoff_s=0.1
                ) as hc:
                    for round_ in range(4):
                        for seed in seeds:
                            served = hc.simulate(
                                "pointer_chase", "none",
                                records=RECORDS, seed=seed,
                            )
                            if served.result.to_dict() != baseline[seed]:
                                failures.append(
                                    (worker, round_, seed, "result drift")
                                )
            except Exception as exc:  # noqa: BLE001 - drill verdict
                failures.append((worker, "exception", repr(exc)))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # let load build before pulling the trigger
        os.kill(victim_pid, signal.SIGKILL)
        for thread in threads:
            thread.join(timeout=300.0)
        assert not failures, f"client calls failed across the crash: {failures}"

        with ServiceClient(host, port, timeout_s=120.0, retries=5,
                           backoff_s=0.2) as c:
            deadline = time.monotonic() + 60.0
            row = None
            while time.monotonic() < deadline:
                row = {r["index"]: r for r in c.ping()["shards"]}[victim]
                if row["state"] == "ready" and row["pid"] != victim_pid:
                    break
                time.sleep(0.2)
            assert row is not None and row["pid"] != victim_pid
            assert row["restarts"] >= 1

            # The reborn shard serves the victim's old key range, warm
            # from the disk tier.
            served = c.simulate("pointer_chase", "none",
                                records=RECORDS, seed=0)
            assert served.shard["index"] == victim
            assert served.shard["pid"] != victim_pid
            assert served.result.to_dict() == baseline[0]
            stats_row = {r["index"]: r for r in c.stats()["shards"]}[victim]
            assert stats_row["cache"]["disk"]["hits"] >= 1

            assert c.shutdown() == {"draining": True}
        assert proc.wait(timeout=120.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)
