"""Tests for the precomputed L1 filter plane and compressed execution.

The load-bearing claims verified here:

* the NumPy grouped-LRU mask kernel is *exactly* the simulator's L1
  filter (lookup-then-insert over ``SetAssociativeCache``) for arbitrary
  geometries and access streams, and
* compressed execution over the plane produces field-for-field identical
  ``SimulationStats`` (and CPI) to the legacy record-by-record walk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import ProcessorConfig
from repro.engine.filter_plane import (
    compressed_enabled,
    compute_filter_plane,
    get_filter_plane,
    l1_hit_mask,
    l1_hit_mask_reference,
)
from repro.engine.simulator import EpochSimulator
from repro.memory.cache import SetAssociativeCache
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import WORKLOADS, make_workload

LINE = 64


def geometry(n_sets: int, ways: int) -> tuple[int, int, int]:
    """Geometry key for an ``n_sets``-set, ``ways``-way cache of 64 B lines."""
    return (n_sets * ways * LINE, ways, LINE)


# ----------------------------------------------------------------------
# Mask kernel vs the simulator's actual L1 filter
# ----------------------------------------------------------------------
small_geometries = st.tuples(
    st.sampled_from([1, 2, 4, 8, 16]),  # n_sets (powers of two)
    st.integers(min_value=1, max_value=8),  # ways
)


class TestMaskProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        i_geom=small_geometries,
        d_geom=small_geometries,
        records=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 63)),  # (kind, line)
            min_size=0,
            max_size=300,
        ),
    )
    def test_mask_matches_reference_cache_replay(self, i_geom, d_geom, records):
        """Kernel mask == lookup/insert replay for random small geometries.

        Line numbers are drawn from a tiny space so sets conflict hard —
        the regime where an LRU-order bug would actually show.
        """
        kinds = np.array([k for k, _ in records], dtype=np.uint8)
        addrs = np.array([line * LINE for _, line in records], dtype=np.int64)
        l1i_key = geometry(*i_geom)
        l1d_key = geometry(*d_geom)

        expected = np.empty(len(records), dtype=bool)
        l1i = SetAssociativeCache(*l1i_key, name="ref-L1I")
        l1d = SetAssociativeCache(*l1d_key, name="ref-L1D")
        for n, (kind, line) in enumerate(records):
            cache = l1i if kind == 0 else l1d
            if cache.lookup(line):
                expected[n] = True
            else:
                cache.insert(line)
                expected[n] = False

        assert np.array_equal(
            l1_hit_mask_reference(kinds, addrs, l1i_key, l1d_key), expected
        )
        # The NumPy kernel requires >= 1 set; degenerate geometries are
        # covered by the reference fallback inside compute_filter_plane.
        assert np.array_equal(l1_hit_mask(kinds, addrs, l1i_key, l1d_key), expected)

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_mask_matches_reference_on_every_registry_workload(self, workload):
        trace = make_workload(workload, records=4_000, seed=13)
        config = ProcessorConfig.scaled()
        l1i_key = (config.l1i.size_bytes, config.l1i.ways, config.line_size)
        l1d_key = (config.l1d.size_bytes, config.l1d.ways, config.line_size)
        assert np.array_equal(
            l1_hit_mask(trace.kind, trace.addr, l1i_key, l1d_key),
            l1_hit_mask_reference(trace.kind, trace.addr, l1i_key, l1d_key),
        )

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            l1_hit_mask(np.zeros(1, np.uint8), np.zeros(1, np.int64), geometry(4, 2), (512, 2, 32))


# ----------------------------------------------------------------------
# Plane prefix sums
# ----------------------------------------------------------------------
class TestPlane:
    def test_prefix_sums_and_miss_indices(self):
        trace = make_workload("tpcw", records=3_000, seed=5)
        config = ProcessorConfig.scaled()
        l1i_key = (config.l1i.size_bytes, config.l1i.ways, config.line_size)
        l1d_key = (config.l1d.size_bytes, config.l1d.ways, config.line_size)
        plane = compute_filter_plane(trace, l1i_key, l1d_key)

        hits = ~plane.miss_mask
        is_ifetch = trace.kind == 0
        n = len(trace)
        assert plane.n_records == n
        assert plane.n_misses == int(plane.miss_mask.sum())
        assert np.array_equal(plane.miss_indices, np.flatnonzero(plane.miss_mask))
        assert plane.l1i_hit_prefix[n] == int((hits & is_ifetch).sum())
        assert plane.l1d_hit_prefix[n] == int((hits & ~is_ifetch).sum())
        # inst_prefix[i] == instructions retired once record i-1 completed.
        assert plane.inst_prefix[0] == 0
        assert plane.inst_prefix[n] == trace.instructions
        for cut in (0, 1, n // 2, n):
            assert plane.miss_count_before(cut) == int(plane.miss_mask[:cut].sum())

    def test_in_memory_memoisation(self):
        trace = make_workload("database", records=2_000, seed=5)
        key = (16 * 1024, 4, 64)
        assert get_filter_plane(trace, key, key) is get_filter_plane(trace, key, key)

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        # Above the persistence floor so the .npz layer engages.
        trace = make_workload("streaming", records=25_000, seed=5)
        trace._plane_cache.clear()
        key = (16 * 1024, 4, 64)
        first = get_filter_plane(trace, key, key)
        cached = list(tmp_path.glob("filter-planes/*.npz"))
        assert len(cached) == 1
        trace._plane_cache.clear()
        second = get_filter_plane(trace, key, key)
        assert second is not first
        assert np.array_equal(first.miss_mask, second.miss_mask)

    def test_python_kernel_env_override(self, monkeypatch):
        trace = make_workload("pointer_chase", records=2_000, seed=5)
        key = (8 * 1024, 2, 64)
        numpy_plane = compute_filter_plane(trace, key, key, kernel="numpy")
        monkeypatch.setenv("REPRO_FILTER_KERNEL", "python")
        python_plane = compute_filter_plane(trace, key, key)
        assert np.array_equal(numpy_plane.miss_mask, python_plane.miss_mask)


# ----------------------------------------------------------------------
# Compressed execution == legacy execution
# ----------------------------------------------------------------------
def run_once(workload: str, scheme: str, compressed: bool, warmup: int | None):
    trace = make_workload(workload, records=6_000, seed=7)
    prefetcher = None if scheme == "none" else build_prefetcher(scheme)
    sim = EpochSimulator(
        ProcessorConfig.scaled(),
        prefetcher,
        cpi_perf=trace.meta.cpi_perf,
        overlap=trace.meta.overlap,
    )
    return sim.run(trace, warmup_records=warmup, compressed=compressed)


class TestCompressedIdentity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("scheme", ["none", "ebcp"])
    def test_stats_field_for_field_identical(self, workload, scheme):
        legacy = run_once(workload, scheme, compressed=False, warmup=None)
        fast = run_once(workload, scheme, compressed=True, warmup=None)
        assert legacy.stats.to_dict() == fast.stats.to_dict()
        assert legacy.cpi == fast.cpi
        assert legacy.cycles == fast.cycles

    @pytest.mark.parametrize("warmup", [0, 1, 1_200, 5_999, 6_000])
    def test_warmup_split_identical(self, warmup):
        legacy = run_once("tpcw", "ebcp", compressed=False, warmup=warmup)
        fast = run_once("tpcw", "ebcp", compressed=True, warmup=warmup)
        assert legacy.stats.to_dict() == fast.stats.to_dict()
        assert legacy.cpi == fast.cpi

    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPRESSED", raising=False)
        assert compressed_enabled()  # on by default
        for value in ("0", "off", "OFF", "false", "no", " none "):
            monkeypatch.setenv("REPRO_COMPRESSED", value)
            assert not compressed_enabled()
        monkeypatch.setenv("REPRO_COMPRESSED", "1")
        assert compressed_enabled()
