"""Bench: the resident service vs cold CLI invocations.

Emits ``BENCH_service.json`` with

* the cold path: wall-clock of ``python -m repro simulate`` subprocesses
  (interpreter boot + trace build + simulation — what every one-shot CLI
  call pays),
* the warm path: served latency against a resident service, split into
  the first (simulating) request and cache-hit repeats, with p50/p99 and
  sustained requests/sec over a repeat burst, and
* the traced warm path: the same cache-hit burst through a
  recorder-attached client, so the p50 ratio quantifies what end-to-end
  tracing costs on the latency-critical path, and
* identity + speedup assertions (hard): served results are bit-identical
  to the in-process JobSpec path, a warm-cache repeat must be at least
  ``WARM_SPEEDUP_FLOOR``x faster than a cold CLI run — the service's
  reason to exist — and tracing must stay under
  ``TRACE_OVERHEAD_CEILING``x of the untraced warm p50.

The floor is conservative: a cold CLI run costs hundreds of
milliseconds of interpreter/import/trace setup, a cache hit is a dict
lookup plus one JSON frame, so the measured ratio is typically far
above 5x on every machine class.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.engine.config import ProcessorConfig
from repro.obs.tracing import SpanRecorder
from repro.parallel import JobSpec
from repro.prefetchers.registry import build_prefetcher
from repro.resilience import ExecutionPolicy
from repro.service import BackgroundService, ServiceClient, ServiceConfig

from conftest import BENCH_RECORDS, BENCH_SEED, publish

#: Serving is about interactive latency, not full-length fidelity — cap
#: the trace so the cold runs stay in CI budget.
_SERVICE_RECORDS_CAP = 40_000

#: Warm-over-cold floor the bench enforces (the ISSUE acceptance bar).
WARM_SPEEDUP_FLOOR = 5.0

#: Hard ceiling on traced-over-untraced warm p50.  The acceptance bar is
#: <5% overhead; the asserted ceiling is far looser because a warm hit is
#: sub-millisecond and timer noise on shared CI easily exceeds 5%.
TRACE_OVERHEAD_CEILING = 1.5

_COLD_RUNS = 3
_WARM_REPEATS = 30

WORKLOAD = "tpcw"
PREFETCHER = "ebcp"


def _percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _cold_cli_run(records: int) -> float:
    """Seconds for one cold ``python -m repro simulate`` subprocess."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    started = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "simulate", WORKLOAD, PREFETCHER,
         "--records", str(records), "--seed", str(BENCH_SEED)],
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    return time.perf_counter() - started


def test_service_vs_cold_cli():
    records = min(BENCH_RECORDS, _SERVICE_RECORDS_CAP)

    cold_s = sorted(_cold_cli_run(records) for _ in range(_COLD_RUNS))
    cold_median_s = cold_s[len(cold_s) // 2]

    policy = ExecutionPolicy(jobs=1, retries=1)
    with BackgroundService(ServiceConfig(port=0), policy=policy) as svc:
        with ServiceClient(*svc.address, timeout_s=600.0, retries=1) as client:
            started = time.perf_counter()
            first = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                    seed=BENCH_SEED)
            first_s = time.perf_counter() - started
            assert first.cached is False

            warm_s = []
            burst_started = time.perf_counter()
            for _ in range(_WARM_REPEATS):
                t0 = time.perf_counter()
                served = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                         seed=BENCH_SEED)
                warm_s.append(time.perf_counter() - t0)
                assert served.cached is True
            burst_s = time.perf_counter() - burst_started
            stats = client.stats()

        # Same warm burst, now with end-to-end tracing: every request
        # carries a TraceContext, the server records admission/batch/
        # cache spans and joins them to the client's trace.
        recorder = SpanRecorder("client")
        with ServiceClient(*svc.address, timeout_s=600.0, retries=1,
                           recorder=recorder) as traced_client:
            traced_s = []
            for _ in range(_WARM_REPEATS):
                t0 = time.perf_counter()
                served = traced_client.simulate(WORKLOAD, PREFETCHER,
                                                records=records, seed=BENCH_SEED)
                traced_s.append(time.perf_counter() - t0)
                assert served.cached is True
        assert len(recorder.spans) == _WARM_REPEATS

    # Identity: the served snapshot equals the in-process JobSpec path.
    local = JobSpec(WORKLOAD, records, BENCH_SEED, ProcessorConfig.scaled(),
                    build_prefetcher(PREFETCHER), PREFETCHER).run()
    assert first.result.snapshot() == local.snapshot()

    warm_s.sort()
    warm_p50_s = _percentile(warm_s, 0.50)
    warm_p99_s = _percentile(warm_s, 0.99)
    sustained_rps = _WARM_REPEATS / burst_s if burst_s else 0.0
    speedup = cold_median_s / warm_p50_s if warm_p50_s else float("inf")

    traced_s.sort()
    traced_p50_s = _percentile(traced_s, 0.50)
    trace_overhead = traced_p50_s / warm_p50_s if warm_p50_s else 1.0

    lines = [
        "service vs cold CLI "
        f"({WORKLOAD}/{PREFETCHER}, {records} records, seed {BENCH_SEED})",
        f"  cold CLI median of {_COLD_RUNS}      {cold_median_s * 1000:9.1f} ms",
        f"  served first (simulated)  {first_s * 1000:9.1f} ms",
        f"  served repeat p50         {warm_p50_s * 1000:9.1f} ms",
        f"  served repeat p99         {warm_p99_s * 1000:9.1f} ms",
        f"  traced repeat p50         {traced_p50_s * 1000:9.1f} ms"
        f"  ({trace_overhead:.2f}x untraced)",
        f"  sustained warm repeats    {sustained_rps:9.1f} req/s",
        f"  warm-over-cold speedup    {speedup:9.1f}x  (floor {WARM_SPEEDUP_FLOOR}x)",
    ]
    publish(
        "service",
        "\n".join(lines),
        data={
            "workload": WORKLOAD,
            "prefetcher": PREFETCHER,
            "service_records": records,
            "cold_cli_s": cold_s,
            "cold_cli_median_s": cold_median_s,
            "served_first_s": first_s,
            "warm_p50_s": warm_p50_s,
            "warm_p99_s": warm_p99_s,
            "traced_warm_p50_s": traced_p50_s,
            "trace_overhead_ratio": trace_overhead,
            "warm_repeats": _WARM_REPEATS,
            "sustained_warm_rps": sustained_rps,
            "warm_over_cold_speedup": speedup,
            "speedup_floor": WARM_SPEEDUP_FLOOR,
            "cache": stats["cache"],
        },
    )

    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache repeat ({warm_p50_s * 1000:.1f} ms p50) is only "
        f"{speedup:.1f}x faster than a cold CLI run "
        f"({cold_median_s * 1000:.1f} ms); the service must clear "
        f"{WARM_SPEEDUP_FLOOR}x"
    )
    assert trace_overhead <= TRACE_OVERHEAD_CEILING, (
        f"tracing costs {trace_overhead:.2f}x on the warm path "
        f"({traced_p50_s * 1000:.2f} ms vs {warm_p50_s * 1000:.2f} ms p50); "
        f"ceiling is {TRACE_OVERHEAD_CEILING}x"
    )
