"""Bench: the resident service vs cold CLI invocations.

Emits ``BENCH_service.json`` with

* the cold path: wall-clock of ``python -m repro simulate`` subprocesses
  (interpreter boot + trace build + simulation — what every one-shot CLI
  call pays),
* the warm path: served latency against a resident service, split into
  the first (simulating) request and cache-hit repeats, with p50/p99 and
  sustained requests/sec over a repeat burst, and
* the traced warm path: the same cache-hit burst through a
  recorder-attached client, so the p50 ratio quantifies what end-to-end
  tracing costs on the latency-critical path, and
* identity + speedup assertions (hard): served results are bit-identical
  to the in-process JobSpec path, a warm-cache repeat must be at least
  ``WARM_SPEEDUP_FLOOR``x faster than a cold CLI run — the service's
  reason to exist — and tracing must stay under
  ``TRACE_OVERHEAD_CEILING``x of the untraced warm p50.

The floor is conservative: a cold CLI run costs hundreds of
milliseconds of interpreter/import/trace setup, a cache hit is a dict
lookup plus one JSON frame, so the measured ratio is typically far
above 5x on every machine class.

``test_sharded_scaling`` extends the record with a req/s-vs-workers
curve: a cache-miss burst (distinct seeds, fired concurrently) against
the sharded front-end at 1, 2 and 4 workers, plus the warm-hit p50
through the router vs the single-process service.  The 4-vs-1 worker
throughput floor is only asserted on machines with >= 4 CPUs — on a
single core the shards serialize and the curve is flat by construction
(the curve is still published so the runner class is visible in the
JSON).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.engine.config import ProcessorConfig
from repro.obs.tracing import SpanRecorder
from repro.parallel import JobSpec
from repro.prefetchers.registry import build_prefetcher
from repro.resilience import ExecutionPolicy
from repro.service import (
    AsyncServiceClient,
    BackgroundService,
    HashRing,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ShardedService,
    routing_key,
)

from conftest import BENCH_RECORDS, BENCH_SEED, RESULTS_DIR, publish

#: Serving is about interactive latency, not full-length fidelity — cap
#: the trace so the cold runs stay in CI budget.
_SERVICE_RECORDS_CAP = 40_000

#: Warm-over-cold floor the bench enforces (the ISSUE acceptance bar).
WARM_SPEEDUP_FLOOR = 5.0

#: Hard ceiling on traced-over-untraced warm p50.  The acceptance bar is
#: <5% overhead; the asserted ceiling is far looser because a warm hit is
#: sub-millisecond and timer noise on shared CI easily exceeds 5%.
TRACE_OVERHEAD_CEILING = 1.5

_COLD_RUNS = 3
_WARM_REPEATS = 30

WORKLOAD = "tpcw"
PREFETCHER = "ebcp"


def _percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _cold_cli_run(records: int) -> float:
    """Seconds for one cold ``python -m repro simulate`` subprocess."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    started = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "simulate", WORKLOAD, PREFETCHER,
         "--records", str(records), "--seed", str(BENCH_SEED)],
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    return time.perf_counter() - started


def test_service_vs_cold_cli():
    records = min(BENCH_RECORDS, _SERVICE_RECORDS_CAP)

    cold_s = sorted(_cold_cli_run(records) for _ in range(_COLD_RUNS))
    cold_median_s = cold_s[len(cold_s) // 2]

    policy = ExecutionPolicy(jobs=1, retries=1)
    with BackgroundService(ServiceConfig(port=0), policy=policy) as svc:
        with ServiceClient(*svc.address, timeout_s=600.0, retries=1) as client:
            started = time.perf_counter()
            first = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                    seed=BENCH_SEED)
            first_s = time.perf_counter() - started
            assert first.cached is False

            warm_s = []
            burst_started = time.perf_counter()
            for _ in range(_WARM_REPEATS):
                t0 = time.perf_counter()
                served = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                         seed=BENCH_SEED)
                warm_s.append(time.perf_counter() - t0)
                assert served.cached is True
            burst_s = time.perf_counter() - burst_started
            stats = client.stats()

        # Same warm burst, now with end-to-end tracing: every request
        # carries a TraceContext, the server records admission/batch/
        # cache spans and joins them to the client's trace.
        recorder = SpanRecorder("client")
        with ServiceClient(*svc.address, timeout_s=600.0, retries=1,
                           recorder=recorder) as traced_client:
            traced_s = []
            for _ in range(_WARM_REPEATS):
                t0 = time.perf_counter()
                served = traced_client.simulate(WORKLOAD, PREFETCHER,
                                                records=records, seed=BENCH_SEED)
                traced_s.append(time.perf_counter() - t0)
                assert served.cached is True
        assert len(recorder.spans) == _WARM_REPEATS

    # Identity: the served snapshot equals the in-process JobSpec path.
    local = JobSpec(WORKLOAD, records, BENCH_SEED, ProcessorConfig.scaled(),
                    build_prefetcher(PREFETCHER), PREFETCHER).run()
    assert first.result.snapshot() == local.snapshot()

    warm_s.sort()
    warm_p50_s = _percentile(warm_s, 0.50)
    warm_p99_s = _percentile(warm_s, 0.99)
    sustained_rps = _WARM_REPEATS / burst_s if burst_s else 0.0
    speedup = cold_median_s / warm_p50_s if warm_p50_s else float("inf")

    traced_s.sort()
    traced_p50_s = _percentile(traced_s, 0.50)
    trace_overhead = traced_p50_s / warm_p50_s if warm_p50_s else 1.0

    lines = [
        "service vs cold CLI "
        f"({WORKLOAD}/{PREFETCHER}, {records} records, seed {BENCH_SEED})",
        f"  cold CLI median of {_COLD_RUNS}      {cold_median_s * 1000:9.1f} ms",
        f"  served first (simulated)  {first_s * 1000:9.1f} ms",
        f"  served repeat p50         {warm_p50_s * 1000:9.1f} ms",
        f"  served repeat p99         {warm_p99_s * 1000:9.1f} ms",
        f"  traced repeat p50         {traced_p50_s * 1000:9.1f} ms"
        f"  ({trace_overhead:.2f}x untraced)",
        f"  sustained warm repeats    {sustained_rps:9.1f} req/s",
        f"  warm-over-cold speedup    {speedup:9.1f}x  (floor {WARM_SPEEDUP_FLOOR}x)",
    ]
    publish(
        "service",
        "\n".join(lines),
        data={
            "workload": WORKLOAD,
            "prefetcher": PREFETCHER,
            "service_records": records,
            "cold_cli_s": cold_s,
            "cold_cli_median_s": cold_median_s,
            "served_first_s": first_s,
            "warm_p50_s": warm_p50_s,
            "warm_p99_s": warm_p99_s,
            "traced_warm_p50_s": traced_p50_s,
            "trace_overhead_ratio": trace_overhead,
            "warm_repeats": _WARM_REPEATS,
            "sustained_warm_rps": sustained_rps,
            "warm_over_cold_speedup": speedup,
            "speedup_floor": WARM_SPEEDUP_FLOOR,
            "cache": stats["cache"],
        },
    )

    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache repeat ({warm_p50_s * 1000:.1f} ms p50) is only "
        f"{speedup:.1f}x faster than a cold CLI run "
        f"({cold_median_s * 1000:.1f} ms); the service must clear "
        f"{WARM_SPEEDUP_FLOOR}x"
    )
    assert trace_overhead <= TRACE_OVERHEAD_CEILING, (
        f"tracing costs {trace_overhead:.2f}x on the warm path "
        f"({traced_p50_s * 1000:.2f} ms vs {warm_p50_s * 1000:.2f} ms p50); "
        f"ceiling is {TRACE_OVERHEAD_CEILING}x"
    )


# ----------------------------------------------------------------------
# Sharded scaling curve
# ----------------------------------------------------------------------

#: Cache-miss load per fleet size; small traces keep three fleets plus a
#: baseline inside the CI budget while each request still does real work.
_SCALING_RECORDS_CAP = 12_000
_SCALING_REQUESTS = 12
_SCALING_WORKERS = (1, 2, 4)

#: 4-worker over 1-worker sustained-throughput floor on cache-miss load
#: (the ISSUE acceptance bar).  Only asserted when the machine has at
#: least 4 CPUs — shards are processes, and on fewer cores they
#: time-share instead of running beside each other.
SCALING_FLOOR_4W = 2.5

#: Warm-hit p50 through the router vs the single-process service.  The
#: router adds one local hop plus a decode/re-encode to stamp the shard
#: onto the reply, so a ratio near 1x means routing is effectively free
#: on the latency path.
SHARDED_WARM_CEILING = 1.2


def _scaling_seeds(records: int) -> list:
    """Distinct seeds whose routing keys cover every shard at every
    fleet size in the sweep.

    The ring is deterministic (blake2b), so this selection is too —
    a greedy scan that prefers seeds landing on a still-uncovered shard
    and back-fills with arbitrary ones once every shard at every fleet
    size has at least one request.
    """
    fp = ProcessorConfig.scaled().fingerprint()
    rings = [HashRing([f"shard-{i}" for i in range(n)]) for n in _SCALING_WORKERS]
    uncovered = [set(ring.shards()) for ring in rings]
    picked: list = []
    seed = 1_000
    while len(picked) < _SCALING_REQUESTS:
        routes = [ring.route(routing_key(WORKLOAD, records, seed, fp))
                  for ring in rings]
        hits_new = any(route in unc for route, unc in zip(routes, uncovered))
        remaining = _SCALING_REQUESTS - len(picked)
        still_needed = sum(len(unc) for unc in uncovered)
        if hits_new or remaining > still_needed:
            picked.append(seed)
            for route, unc in zip(routes, uncovered):
                unc.discard(route)
        seed += 1
    return picked


def _miss_burst(address, seeds: list, records: int):
    """Fire one concurrent cache-miss burst; return (served, seconds)."""

    async def run():
        client = AsyncServiceClient(*address, timeout_s=600.0, retries=1)
        started = time.perf_counter()
        served = await asyncio.gather(
            *(client.simulate(WORKLOAD, PREFETCHER, records=records, seed=seed)
              for seed in seeds)
        )
        return served, time.perf_counter() - started

    return asyncio.run(run())


def _warm_p50(address, records: int, seed: int) -> float:
    """p50 of repeat (cache-hit) requests against a running service."""
    samples = []
    with ServiceClient(*address, timeout_s=600.0, retries=1) as client:
        for _ in range(_WARM_REPEATS):
            t0 = time.perf_counter()
            served = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                     seed=seed)
            samples.append(time.perf_counter() - t0)
            assert served.cached is True
    samples.sort()
    return _percentile(samples, 0.50)


def test_sharded_scaling():
    records = min(BENCH_RECORDS, _SCALING_RECORDS_CAP)
    seeds = _scaling_seeds(records)
    policy = ExecutionPolicy(jobs=1, retries=1)

    # Single-process baseline: the same warm hit without a router hop.
    with BackgroundService(ServiceConfig(port=0), policy=policy) as svc:
        with ServiceClient(*svc.address, timeout_s=600.0, retries=1) as client:
            first = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                    seed=seeds[0])
            assert first.cached is False
        single_warm_p50_s = _warm_p50(svc.address, records, seeds[0])

    curve = []
    snapshots: dict = {}
    rps: dict = {}
    for workers in _SCALING_WORKERS:
        service = ShardedService(
            config=ServiceConfig(port=0, cache_entries=256),
            policy=policy,
            workers=workers,
        )
        with BackgroundService(service=service, start_timeout_s=180.0) as svc:
            served, elapsed = _miss_burst(svc.address, seeds, records)
            assert all(s.cached is False for s in served)
            pids = {s.shard["pid"] for s in served}
            # The seed selection guarantees every shard saw work.
            assert len(pids) == workers
            for seed, s in zip(seeds, served):
                snapshot = s.result.snapshot()
                # Identity across fleet sizes: sharding must not change
                # a single bit of any answer.
                assert snapshots.setdefault(seed, snapshot) == snapshot
            rps[workers] = len(seeds) / elapsed if elapsed else 0.0
            warm_p50 = _warm_p50(svc.address, records, seeds[0])
            curve.append({
                "workers": workers,
                "sustained_miss_rps": rps[workers],
                "burst_s": elapsed,
                "warm_p50_s": warm_p50,
                "distinct_pids": len(pids),
            })

    sharded_warm_p50_s = curve[-1]["warm_p50_s"]
    throughput_ratio_4w = rps[4] / rps[1] if rps[1] else 0.0
    warm_ratio = (sharded_warm_p50_s / single_warm_p50_s
                  if single_warm_p50_s else 1.0)
    cpus = os.cpu_count() or 1

    lines = [
        "sharded scaling "
        f"({WORKLOAD}/{PREFETCHER}, {records} records, "
        f"{len(seeds)} distinct-seed misses, {cpus} cpus)",
    ]
    for point in curve:
        lines.append(
            f"  {point['workers']} worker(s)   "
            f"{point['sustained_miss_rps']:7.2f} miss req/s   "
            f"warm p50 {point['warm_p50_s'] * 1000:7.2f} ms   "
            f"{point['distinct_pids']} pid(s)"
        )
    lines.append(
        f"  4w/1w miss throughput     {throughput_ratio_4w:9.2f}x  "
        f"(floor {SCALING_FLOOR_4W}x when cpus >= 4)"
    )
    lines.append(
        f"  sharded/single warm p50   {warm_ratio:9.2f}x  "
        f"(ceiling {SHARDED_WARM_CEILING}x)"
    )
    text = "\n".join(lines)

    # Fold the curve into the service bench record (the vs-cold test in
    # this file published it moments ago) rather than overwriting it.
    data = {
        "scaling_records": records,
        "scaling_requests": len(seeds),
        "scaling_cpu_count": cpus,
        "scaling_curve": curve,
        "scaling_throughput_ratio_4w": throughput_ratio_4w,
        "single_warm_p50_s": single_warm_p50_s,
        "sharded_warm_p50_s": sharded_warm_p50_s,
        "sharded_warm_over_single_ratio": warm_ratio,
        "scaling_floor_4w": SCALING_FLOOR_4W,
    }
    base_path = RESULTS_DIR / "BENCH_service.json"
    if base_path.exists():
        base = json.loads(base_path.read_text(encoding="utf-8"))
        for stamp in ("bench", "records", "seed"):
            base.pop(stamp, None)
        data = {**base, **data}
    text_path = RESULTS_DIR / "service.txt"
    if text_path.exists():
        text = text_path.read_text(encoding="utf-8").rstrip() + "\n\n" + text
    publish("service", text, data=data)

    if cpus >= 4:
        assert throughput_ratio_4w >= SCALING_FLOOR_4W, (
            f"4 workers sustain only {throughput_ratio_4w:.2f}x the 1-worker "
            f"cache-miss throughput ({rps[4]:.2f} vs {rps[1]:.2f} req/s) on a "
            f"{cpus}-cpu machine; the sharded tier must clear {SCALING_FLOOR_4W}x"
        )
    assert warm_ratio <= SHARDED_WARM_CEILING, (
        f"the router costs {warm_ratio:.2f}x on the warm path "
        f"({sharded_warm_p50_s * 1000:.2f} ms vs "
        f"{single_warm_p50_s * 1000:.2f} ms single-process p50); "
        f"ceiling is {SHARDED_WARM_CEILING}x"
    )


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------

_RECOVERY_RECORDS_CAP = 12_000
_RECOVERY_HEARTBEAT_S = 0.25

#: Hard sanity ceilings; the interesting drift is tracked against the
#: blessed baseline by ``check_regression.py`` (``recovery_ready_s`` /
#: ``recovery_error_window_s``), these just catch a wedged supervisor.
RECOVERY_READY_CEILING_S = 60.0
RECOVERY_WINDOW_CEILING_S = 90.0


def test_shard_recovery(tmp_path):
    """SIGKILL one shard of a supervised 2-shard fleet and time the
    recovery: supervisor time-to-ready and the client-visible error
    window until the victim's own key answers again (warm, from the
    shared disk tier, bit-identically)."""
    records = min(BENCH_RECORDS, _RECOVERY_RECORDS_CAP)
    policy = ExecutionPolicy(jobs=1, retries=1)
    service = ShardedService(
        config=ServiceConfig(
            port=0, cache_entries=256, cache_dir=str(tmp_path / "tier")
        ),
        policy=policy,
        workers=2,
        heartbeat_s=_RECOVERY_HEARTBEAT_S,
    )
    with BackgroundService(service=service, start_timeout_s=180.0) as svc:
        with ServiceClient(*svc.address, timeout_s=600.0, retries=1) as client:
            first = client.simulate(WORKLOAD, PREFETCHER, records=records,
                                    seed=BENCH_SEED)
            victim = first.shard["index"]
            victim_pid = first.shard["pid"]

        killed_at = time.perf_counter()
        os.kill(victim_pid, signal.SIGKILL)

        # Zero-retry probes of the victim's own key: every failure is the
        # retryable window a real client's retry policy would absorb.
        window_s = None
        probes = 0
        with ServiceClient(*svc.address, timeout_s=600.0, retries=0) as probe:
            deadline = time.perf_counter() + RECOVERY_WINDOW_CEILING_S
            while time.perf_counter() < deadline:
                probes += 1
                try:
                    served = probe.simulate(WORKLOAD, PREFETCHER,
                                            records=records, seed=BENCH_SEED)
                except (ServiceError, OSError):
                    time.sleep(0.02)
                    continue
                window_s = time.perf_counter() - killed_at
                break
            assert window_s is not None, (
                f"victim key still failing {RECOVERY_WINDOW_CEILING_S}s "
                f"after the kill ({probes} probes)"
            )
            # The reborn shard owns the same key range and answers warm
            # from the disk tier, bit-identically.
            assert served.shard["index"] == victim
            assert served.shard["pid"] != victim_pid
            assert served.cached is True
            assert served.result.snapshot() == first.result.snapshot()

            row = {r["index"]: r for r in probe.ping()["shards"]}[victim]
            assert row["restarts"] == 1
            # uptime_s dates from the moment the replacement finished its
            # handshake, so kill-to-ready = elapsed-since-kill - uptime.
            ready_s = max(
                0.0, (time.perf_counter() - killed_at) - row["uptime_s"]
            )

    lines = [
        "shard crash recovery "
        f"({WORKLOAD}/{PREFETCHER}, {records} records, 2 workers, "
        f"heartbeat {_RECOVERY_HEARTBEAT_S}s)",
        f"  supervisor time-to-ready  {ready_s * 1000:9.1f} ms",
        f"  client error window       {window_s * 1000:9.1f} ms"
        f"  ({probes} zero-retry probes)",
    ]
    text = "\n".join(lines)
    data = {
        "recovery_records": records,
        "recovery_heartbeat_s": _RECOVERY_HEARTBEAT_S,
        "recovery_ready_s": ready_s,
        "recovery_error_window_s": window_s,
        "recovery_probes": probes,
    }
    base_path = RESULTS_DIR / "BENCH_service.json"
    if base_path.exists():
        base = json.loads(base_path.read_text(encoding="utf-8"))
        for stamp in ("bench", "records", "seed"):
            base.pop(stamp, None)
        data = {**base, **data}
    text_path = RESULTS_DIR / "service.txt"
    if text_path.exists():
        text = text_path.read_text(encoding="utf-8").rstrip() + "\n\n" + text
    publish("service", text, data=data)

    assert ready_s <= RECOVERY_READY_CEILING_S
    assert window_s <= RECOVERY_WINDOW_CEILING_S
