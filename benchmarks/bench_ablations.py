"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of its arguments:

* **skip-2 targeting** (EBCP vs EBCP-minus at matched budgets) — the
  value of not storing the un-prefetchable next epoch;
* **main-memory vs on-chip table** — how much performance the in-memory
  table costs (and how much SRAM it saves);
* **epoch keying vs miss keying** (EBCP vs Solihin at the same degree) —
  keying the table per epoch instead of per miss;
* **prefetch-buffer-hit lookup chaining** (Section 3.4.3) — disabling the
  pb-hit-as-key mechanism.
"""

from __future__ import annotations

from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.prefetchers.solihin import SolihinPrefetcher
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload

from conftest import publish


class _NoHitChainEBCP(EpochBasedCorrelationPrefetcher):
    """EBCP without the prefetch-buffer-hit lookup substitution."""

    name = "ebcp_no_hit_chain"

    def observe_prefetch_hit(self, access, line, table_index, epoch_index, first_in_epoch):
        # Keep the LRU touch and EMAB recording but never key a lookup.
        return super().observe_prefetch_hit(
            access, line, table_index, epoch_index, False
        )


def _improvement(trace, prefetcher):
    config = ProcessorConfig.scaled()
    kwargs = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
    base = EpochSimulator(config, None, **kwargs).run(trace)
    result = EpochSimulator(config, prefetcher, **kwargs).run(trace)
    return result.improvement_over(base)


def test_ablations(benchmark, bench_records, bench_seed):
    def run():
        rows = []
        for workload in COMMERCIAL_WORKLOADS:
            trace = make_workload(workload, records=bench_records, seed=bench_seed)
            ebcp = _improvement(
                trace, EpochBasedCorrelationPrefetcher(EBCPConfig(prefetch_degree=8))
            )
            minus = _improvement(
                trace,
                EpochBasedCorrelationPrefetcher(
                    EBCPConfig(prefetch_degree=8, skip_epochs=1)
                ),
            )
            onchip = _improvement(
                trace,
                EpochBasedCorrelationPrefetcher(
                    EBCPConfig(
                        prefetch_degree=8, table_entries=16 * 1024, table_in_memory=False
                    )
                ),
            )
            solihin = _improvement(
                trace, SolihinPrefetcher(depth=8, width=1, degree=8)
            )
            no_chain = _NoHitChainEBCP(EBCPConfig(prefetch_degree=8))
            no_chain_imp = _improvement(trace, no_chain)
            rows.append((workload, ebcp, minus, onchip, solihin, no_chain_imp))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "EBCP ablations (degree 8, improvement over no prefetching):",
        f"{'workload':16s} {'ebcp':>8s} {'skip-1':>8s} {'onchip-16K':>10s} "
        f"{'solihin-8,1':>11s} {'no-hit-chain':>12s}",
    ]
    for workload, ebcp, minus, onchip, solihin, no_chain in rows:
        lines.append(
            f"{workload:16s} {ebcp:+8.1%} {minus:+8.1%} {onchip:+10.1%} "
            f"{solihin:+11.1%} {no_chain:+12.1%}"
        )
    publish(
        "ablations",
        "\n".join(lines),
        data={
            "kind": "table",
            "id": "ablations",
            "headers": ["workload", "ebcp", "skip-1", "onchip-16K", "solihin-8,1", "no-hit-chain"],
            "rows": [list(row) for row in rows],
        },
    )

    for workload, ebcp, minus, onchip, solihin, no_chain in rows:
        # Skip-2 targeting beats storing the next epoch.
        assert ebcp > minus, workload
        # The pb-hit lookup chain contributes (Section 3.4.3).
        assert ebcp >= no_chain, workload
        # The in-memory table costs little over an (expensive) on-chip one.
        assert onchip - ebcp < 0.08, workload
