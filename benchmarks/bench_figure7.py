"""Bench: Figure 7 — improvement vs prefetch-buffer entries."""

from __future__ import annotations

from repro.experiments import figure7
from repro.workloads.registry import COMMERCIAL_WORKLOADS

from conftest import publish


def test_figure7(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: figure7.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("figure7", result.render(), data=result.to_dict())
    for workload in COMMERCIAL_WORKLOADS:
        small = result.value(workload, 16)
        tuned = result.value(workload, 64)
        huge = result.value(workload, 1024)
        # The paper's conclusion: 64 entries (512 B) are adequate.
        assert tuned > small, workload
        assert huge - tuned < 0.08, workload
