"""Bench: regenerate the paper's Table 1 (baseline statistics)."""

from __future__ import annotations

from repro.analysis.calibration import TABLE1_TARGETS, check_baseline
from repro.experiments import table1

from conftest import publish


def test_table1(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: table1.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("table1", result.render(), data=result.to_dict())
    assert len(result.rows) == len(TABLE1_TARGETS)


def test_table1_calibration_tightness(benchmark, bench_records, bench_seed):
    """At full length every Table 1 cell lands within 25 % of the paper.

    (Short runs — low REPRO_BENCH_RECORDS — drift further; the recorded
    EXPERIMENTS.md numbers use the full default length.)
    """

    def run():
        return [
            check_baseline(w, records=bench_records, seed=bench_seed)
            for w in TABLE1_TARGETS
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Calibration relative errors vs paper Table 1:"]
    errors = []
    for report in reports:
        lines.append(
            f"  {report.workload:15s} cpi {report.cpi_error:5.1%}  "
            f"epi {report.epi_error:5.1%}  inst {report.inst_miss_error:5.1%}  "
            f"load {report.load_miss_error:5.1%}"
        )
        errors.append(
            {
                "workload": report.workload,
                "cpi_error": report.cpi_error,
                "epi_error": report.epi_error,
                "inst_miss_error": report.inst_miss_error,
                "load_miss_error": report.load_miss_error,
            }
        )
        assert report.within(0.25), report.workload
    publish(
        "table1_calibration",
        "\n".join(lines),
        data={"kind": "calibration", "id": "Table 1 calibration", "errors": errors},
    )
