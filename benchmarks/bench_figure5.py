"""Bench: Figure 5 — EPI reduction, miss rates, coverage, accuracy."""

from __future__ import annotations

from repro.experiments import figure5
from repro.workloads.registry import COMMERCIAL_WORKLOADS

from conftest import publish


def test_figure5(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: figure5.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("figure5", result.render(), data=result.to_dict())
    for workload in COMMERCIAL_WORKLOADS:
        coverage = result.coverage.series[workload]
        accuracy = result.accuracy.series[workload]
        epi = result.epi_reduction.series[workload]
        # Coverage rises with degree; accuracy falls (paper Section 5.2.1).
        assert coverage[-1] > coverage[0], workload
        assert accuracy[-1] < accuracy[0], workload
        # EPI reduction tracks coverage: the prefetcher removes whole
        # epochs with the misses it eliminates.
        assert epi[-1] > 0, workload
