"""Bench: Figure 4 — overall improvement vs prefetch degree."""

from __future__ import annotations

from repro.experiments import figure4
from repro.workloads.registry import COMMERCIAL_WORKLOADS

from conftest import publish


def test_figure4(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: figure4.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("figure4", result.render(), data=result.to_dict())
    # Paper shape: at the default 9.6 GB/s read bandwidth, performance
    # improves (weakly) monotonically with degree for every workload.
    for workload in COMMERCIAL_WORKLOADS:
        series = result.series[workload]
        assert series[-1] > series[0], workload
        assert max(series) == series[-1] or max(series) - series[-1] < 0.02, workload
