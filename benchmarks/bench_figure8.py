"""Bench: Figure 8 — bandwidth sensitivity of the degree sweep."""

from __future__ import annotations

from repro.experiments import figure8

from conftest import publish


def test_figure8(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: figure8.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("figure8", result.render(), data=result.to_dict())

    def peak_degree(read_gbps: float, workload: str) -> int:
        panel = result.panels[f"{read_gbps:g}"]
        series = panel.series[workload]
        best = max(range(len(series)), key=lambda i: series[i])
        return list(panel.x_values)[best]

    # Paper shape: at 9.6 GB/s the database keeps improving to high
    # degrees; at 3.2 GB/s the optimum shifts to a much lower degree.
    assert peak_degree(9.6, "database") >= 16
    assert peak_degree(3.2, "database") <= 8
    # Constrained bandwidth costs performance at the aggressive end for
    # every workload.
    for workload, series_96 in result.panels["9.6"].series.items():
        series_32 = result.panels["3.2"].series[workload]
        assert series_32[-1] < series_96[-1], workload
