"""Shared bench configuration.

Each bench regenerates one table/figure of the paper at full trace length
and both prints the rendered rows/series and writes them under
``benchmarks/results/`` (pytest captures stdout, the files always
survive).  Set ``REPRO_BENCH_RECORDS`` to trade fidelity for speed.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Full-length default (the EXPERIMENTS.md protocol); override with
#: REPRO_BENCH_RECORDS=120000 for a quick pass.
BENCH_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "200000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_records() -> int:
    return BENCH_RECORDS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def publish(name: str, text: str) -> None:
    """Print a rendered result and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
