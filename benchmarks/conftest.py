"""Shared bench configuration.

Each bench regenerates one table/figure of the paper at full trace length
and both prints the rendered rows/series and writes them under
``benchmarks/results/`` (pytest captures stdout, the files always
survive).  Set ``REPRO_BENCH_RECORDS`` to trade fidelity for speed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Full-length default (the EXPERIMENTS.md protocol); override with
#: REPRO_BENCH_RECORDS=120000 for a quick pass.
BENCH_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "200000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
#: Worker processes per experiment run; None defers to $REPRO_JOBS
#: inside the library (results are bit-identical at any job count).
_BENCH_JOBS = os.environ.get("REPRO_BENCH_JOBS", "").strip()
BENCH_JOBS = int(_BENCH_JOBS) if _BENCH_JOBS else None

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_records() -> int:
    return BENCH_RECORDS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


@pytest.fixture(scope="session")
def bench_jobs() -> "int | None":
    return BENCH_JOBS


@pytest.fixture(scope="session")
def bench_policy():
    """The execution policy the bench experiments run under.

    One retry guards the long runs against transient worker deaths
    without masking persistent failures.
    """
    from repro.resilience import ExecutionPolicy

    return ExecutionPolicy(jobs=BENCH_JOBS, retries=1)


def publish(name: str, text: str, data: dict | None = None) -> None:
    """Print a rendered result and persist it under results/.

    ``data`` (when given) is additionally written as machine-readable
    JSON to ``results/BENCH_<name>.json``, stamped with the run's
    records/seed so downstream tooling can tell a quick pass from a
    full-length one.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {"bench": name, "records": BENCH_RECORDS, "seed": BENCH_SEED, **data}
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
