"""Bench: Figure 6 — improvement vs correlation-table entries."""

from __future__ import annotations

from repro.experiments import figure6
from repro.workloads.registry import COMMERCIAL_WORKLOADS

from conftest import publish


def test_figure6(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: figure6.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("figure6", result.render(), data=result.to_dict())
    for workload in COMMERCIAL_WORKLOADS:
        tiny = result.value(workload, 1024)
        knee = result.value(workload, 128 * 1024)
        plateau = result.value(workload, 512 * 1024)
        # Too few entries erode performance; the scaled equivalent of the
        # paper's one-million-entry knee is sufficient.
        assert knee > tiny, workload
        assert abs(plateau - knee) < 0.05, workload
