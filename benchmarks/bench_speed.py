"""Bench: raw simulator throughput and parallel sweep speedup.

Emits ``BENCH_speed.json`` with

* single-process throughput (trace records simulated per second) for the
  no-prefetching baseline and the default EBCP,
* wall-clock time of the same 8-job sweep grid at ``jobs=1`` vs
  ``jobs=4`` and the resulting speedup, and
* a bit-identity check between the two (hard assertion: parallelism must
  never change results).

The speedup assertion is gated on the machine actually having cores to
fan out to — on a single-core CI runner the pool can only add overhead,
and the number is still reported for the record.
"""

from __future__ import annotations

import os
import time

from repro.engine.config import ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload

from conftest import publish

#: Throughput recorded on the development machine before/after the
#: hot-path optimization pass (median of interleaved A/B runs, ebcp on
#: tpcw at 40 K records, seed 7) — the provenance of the reported
#: single-process gain.  Absolute records/sec are machine-specific; the
#: *ratio* is what the optimization claims.
REFERENCE = {
    "pre_optimization_records_per_sec": 48_908,
    "post_optimization_records_per_sec": 57_172,
    "method": "interleaved A/B medians, 5 runs each, same machine",
}

_SPEED_RECORDS_CAP = 40_000


def _throughput(workload: str, records: int, seed: int, scheme: str, repeats: int = 3):
    """Best-of-N records/sec for one (workload, prefetcher) pair."""
    trace = make_workload(workload, records=records, seed=seed)
    trace.columns()  # pre-pack so we time the simulator, not the conversion
    config = ProcessorConfig.scaled()
    best = float("inf")
    for _ in range(repeats):
        prefetcher = None if scheme == "none" else build_prefetcher(scheme)
        sim = EpochSimulator(
            config, prefetcher, cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap
        )
        start = time.perf_counter()
        sim.run(trace)
        best = min(best, time.perf_counter() - start)
    return len(trace) / best


def _sweep_specs(records: int, seed: int) -> "list[JobSpec]":
    config = ProcessorConfig.scaled()
    return [
        JobSpec(
            workload=workload,
            records=records,
            seed=seed,
            config=config,
            prefetcher=None if scheme == "none" else build_prefetcher(scheme),
            label=scheme,
        )
        for workload in COMMERCIAL_WORKLOADS
        for scheme in ("none", "ebcp")
    ]


def test_speed(benchmark, bench_records, bench_seed):
    records = min(bench_records, _SPEED_RECORDS_CAP)

    def run():
        # Warm the trace memo so both timed passes start from equal footing.
        for workload in COMMERCIAL_WORKLOADS:
            make_workload(workload, records=records, seed=bench_seed).columns()

        throughput = {
            scheme: _throughput("tpcw", records, bench_seed, scheme)
            for scheme in ("none", "ebcp")
        }

        start = time.perf_counter()
        sequential = run_jobs(_sweep_specs(records, bench_seed), jobs=1)
        jobs1_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_jobs(_sweep_specs(records, bench_seed), jobs=4)
        jobs4_seconds = time.perf_counter() - start

        return throughput, sequential, parallel, jobs1_seconds, jobs4_seconds

    throughput, sequential, parallel, jobs1_seconds, jobs4_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Parallelism must never change results — asserted on every machine.
    assert [r.stats.to_dict() for r in sequential] == [
        r.stats.to_dict() for r in parallel
    ]

    speedup = jobs1_seconds / jobs4_seconds
    cores = os.cpu_count() or 1
    lines = [
        "Simulator speed:",
        f"  records/sec (none): {throughput['none']:10.0f}",
        f"  records/sec (ebcp): {throughput['ebcp']:10.0f}",
        f"  8-job sweep, jobs=1: {jobs1_seconds:6.2f} s",
        f"  8-job sweep, jobs=4: {jobs4_seconds:6.2f} s  (speedup {speedup:.2f}x "
        f"on {cores} cores)",
    ]
    publish(
        "speed",
        "\n".join(lines),
        data={
            "kind": "speed",
            "id": "speed",
            "records_per_sec": throughput,
            "sweep_jobs1_seconds": jobs1_seconds,
            "sweep_jobs4_seconds": jobs4_seconds,
            "parallel_speedup_j4": speedup,
            "parallel_identical": True,
            "cpu_count": cores,
            "single_process_reference": REFERENCE,
        },
    )

    if cores >= 4 and records >= 20_000:
        assert speedup >= 2.0, f"expected >=2x at -j 4 on {cores} cores, got {speedup:.2f}x"
