"""Bench: raw simulator throughput and parallel sweep speedup.

Emits ``BENCH_speed.json`` with

* single-process throughput (trace records simulated per second) for the
  no-prefetching baseline and every EBCP variant (``ebcp``,
  ``ebcp_minus``, ``ebcp_onchip``) on the epoch-batched kernel path,
  alongside the scalar (``REPRO_KERNEL=off``) and legacy
  (record-by-record) reference paths,
* the kernel-over-scalar speedup ratio per variant (the claim of the
  epoch-batched kernel) and the compressed-over-legacy ratio (the claim
  of the filter-plane layer),
* wall-clock time of the same 8-job sweep grid at ``jobs=1`` vs
  ``jobs=4`` and the resulting speedup, and
* bit-identity checks (hard assertions): parallelism, compressed
  execution and the epoch-batched kernel must never change results.

The rendered ``results/speed.txt`` is produced from the *same* payload
dict that becomes ``BENCH_speed.json`` (see :func:`_render_speed_text`),
so the two can never drift apart.

The parallel-speedup assertion is gated on the machine actually having
cores to fan out to — on a single-core runner ``run_jobs`` now skips the
pool entirely (set ``REPRO_FORCE_POOL=1`` to force it), and the number
is still reported for the record.

Perf-regression guard
---------------------
With ``REPRO_PERF_GUARD=1`` (the CI guard step) the bench fails if a
measured speedup ratio drops more than 25 % below its frozen reference
floor — both the filter-plane ratios and the kernel-over-scalar ratio on
``ebcp``.  The guard compares *ratios measured within one run on one
machine*, so it is machine-class independent — absolute records/sec on a
laptop and a CI runner differ wildly, but the ratio a pure-speed
optimisation claims must hold everywhere.
"""

from __future__ import annotations

import os
import time

from repro.engine.config import ProcessorConfig
from repro.engine.filter_plane import get_filter_plane
from repro.engine.simulator import EpochSimulator
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload

from conftest import publish

#: Frozen reference numbers (tpcw at 40 K records, seed 7, best-of-N on
#: the development machine).  Absolute records/sec are machine-specific;
#: the *speedup ratios* are what the optimisations claim and what the
#: perf guard enforces.
REFERENCE = {
    "pre_optimization_records_per_sec": 48_908,
    "post_optimization_records_per_sec": 57_172,
    "pre_filter_plane_records_per_sec": {"none": 97_977, "ebcp": 58_882},
    #: Compressed / legacy speedup on the same machine and trace — the
    #: machine-independent claim of the filter-plane layer (measured
    #: ~3.4x none / ~1.5x ebcp; floors hold 25 % slack below that).
    "filter_plane_speedup_floor": {"none": 3.0, "ebcp": 1.15},
    #: ebcp throughput before the epoch-batched kernel (scalar compressed
    #: path on the development machine) and the kernel-over-scalar ratio
    #: floor the kernel claims (measured ~5.4x; the floor holds slack).
    "pre_kernel_records_per_sec": 99_693,
    "kernel_records_per_sec": 569_065,
    "kernel_speedup_floor": {"ebcp": 4.0},
    "method": "interleaved best-of-N on one machine; guard compares ratios",
}

#: Fraction of the reference speedup that must survive (guard fails on a
#: >25 % regression).
_GUARD_SLACK = 0.75

_SPEED_RECORDS_CAP = 40_000

#: EBCP variants measured on the kernel and scalar paths.
_VARIANTS = ("ebcp", "ebcp_minus", "ebcp_onchip")


def _run_once(trace, config, scheme: str, compressed: bool) -> EpochSimulator:
    prefetcher = None if scheme == "none" else build_prefetcher(scheme)
    sim = EpochSimulator(
        config, prefetcher, cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap
    )
    sim.run(trace, compressed=compressed)
    return sim


def _throughput(
    workload: str,
    records: int,
    seed: int,
    scheme: str,
    compressed: bool,
    repeats: int = 5,
    kernel: "bool | None" = None,
):
    """Best-of-N records/sec for one (workload, prefetcher, mode).

    ``kernel`` toggles ``REPRO_KERNEL`` around the timed runs: ``False``
    forces the scalar reference path, ``True`` requires the kernel,
    ``None`` leaves the environment alone.
    """
    trace = make_workload(workload, records=records, seed=seed)
    trace.columns()  # pre-pack so we time the simulator, not the conversion
    config = ProcessorConfig.scaled()
    if compressed:
        # Pre-warm the plane: it is computed once per (trace, L1 geometry)
        # and shared by every run, so it is setup cost, not run cost.
        l1i = (config.l1i.size_bytes, config.l1i.ways, config.line_size)
        l1d = (config.l1d.size_bytes, config.l1d.ways, config.line_size)
        get_filter_plane(trace, l1i, l1d)
    saved = os.environ.get("REPRO_KERNEL")
    if kernel is False:
        os.environ["REPRO_KERNEL"] = "off"
    elif kernel is True:
        os.environ.pop("REPRO_KERNEL", None)
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sim = _run_once(trace, config, scheme, compressed)
            best = min(best, time.perf_counter() - start)
        if kernel is True:
            assert sim.last_run_path == "epoch_kernel", (
                f"expected the epoch kernel on '{scheme}', "
                f"took {sim.last_run_path!r}"
            )
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved
    return len(trace) / best


def _kernel_identity(records: int, seed: int) -> None:
    """Hard assertion: kernel and scalar paths are bit-identical."""
    trace = make_workload("tpcw", records=records, seed=seed)
    config = ProcessorConfig.scaled()
    saved = os.environ.get("REPRO_KERNEL")
    try:
        os.environ.pop("REPRO_KERNEL", None)
        kernel_sim = _run_once(trace, config, "ebcp", compressed=True)
        os.environ["REPRO_KERNEL"] = "off"
        scalar_sim = _run_once(trace, config, "ebcp", compressed=True)
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved
    assert kernel_sim.last_run_path == "epoch_kernel"
    assert scalar_sim.last_run_path == "compressed"
    assert kernel_sim.stats.to_dict() == scalar_sim.stats.to_dict(), (
        "epoch kernel and scalar path disagree — bit-identity violated"
    )


def _sweep_specs(records: int, seed: int) -> "list[JobSpec]":
    config = ProcessorConfig.scaled()
    return [
        JobSpec(
            workload=workload,
            records=records,
            seed=seed,
            config=config,
            prefetcher=None if scheme == "none" else build_prefetcher(scheme),
            label=scheme,
        )
        for workload in COMMERCIAL_WORKLOADS
        for scheme in ("none", "ebcp")
    ]


def _render_speed_text(data: dict) -> str:
    """Render ``results/speed.txt`` from the published JSON payload.

    Taking the payload as the single source means the text file and
    ``BENCH_speed.json`` always describe the same run.
    """
    throughput = data["records_per_sec"]
    scalar = data["records_per_sec_scalar"]
    legacy = data["records_per_sec_legacy"]
    kernel_speedup = data["kernel_speedup"]
    plane_speedup = data["filter_plane_speedup"]
    cores = data["cpu_count"]
    lines = ["Simulator speed:"]
    lines.append(
        f"  records/sec (none): {throughput['none']:10.0f}"
        f"  (legacy {legacy['none']:8.0f}, plane speedup {plane_speedup['none']:.2f}x)"
    )
    for scheme in _VARIANTS:
        lines.append(
            f"  records/sec ({scheme}): {throughput[scheme]:10.0f}"
            f"  (scalar {scalar[scheme]:8.0f}, kernel speedup "
            f"{kernel_speedup[scheme]:.2f}x)"
        )
    lines.append(
        f"  ebcp legacy path: {legacy['ebcp']:10.0f} rec/s"
        f"  (scalar plane speedup {plane_speedup['ebcp']:.2f}x)"
    )
    lines.append(f"  8-job sweep, jobs=1: {data['sweep_jobs1_seconds']:6.2f} s")
    lines.append(
        f"  8-job sweep, jobs=4: {data['sweep_jobs4_seconds']:6.2f} s"
        f"  (speedup {data['parallel_speedup_j4']:.2f}x "
        f"on {cores} core{'' if cores == 1 else 's'})"
    )
    return "\n".join(lines)


def test_speed(benchmark, bench_records, bench_seed):
    records = min(bench_records, _SPEED_RECORDS_CAP)

    def run():
        # Warm the trace memo so both timed passes start from equal footing.
        for workload in COMMERCIAL_WORKLOADS:
            make_workload(workload, records=records, seed=bench_seed).columns()

        # The kernel must match the scalar path before its speed counts.
        _kernel_identity(records, bench_seed)

        throughput = {
            "none": _throughput(
                "tpcw", records, bench_seed, "none", compressed=True
            )
        }
        scalar = {}
        for scheme in _VARIANTS:
            throughput[scheme] = _throughput(
                "tpcw", records, bench_seed, scheme, compressed=True, kernel=True
            )
            scalar[scheme] = _throughput(
                "tpcw", records, bench_seed, scheme,
                compressed=True, repeats=3, kernel=False,
            )
        legacy = {
            scheme: _throughput("tpcw", records, bench_seed, scheme, compressed=False)
            for scheme in ("none", "ebcp")
        }

        start = time.perf_counter()
        sequential = run_jobs(_sweep_specs(records, bench_seed), jobs=1)
        jobs1_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_jobs(_sweep_specs(records, bench_seed), jobs=4)
        jobs4_seconds = time.perf_counter() - start

        return throughput, scalar, legacy, sequential, parallel, jobs1_seconds, jobs4_seconds

    (
        throughput,
        scalar,
        legacy,
        sequential,
        parallel,
        jobs1_seconds,
        jobs4_seconds,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Parallelism must never change results — asserted on every machine.
    assert [r.stats.to_dict() for r in sequential] == [
        r.stats.to_dict() for r in parallel
    ]

    kernel_speedup = {s: throughput[s] / scalar[s] for s in _VARIANTS}
    plane_speedup = {
        "none": throughput["none"] / legacy["none"],
        # The plane claim predates the kernel: compare scalar-compressed
        # against legacy so the two optimisations are attributed separately.
        "ebcp": scalar["ebcp"] / legacy["ebcp"],
    }
    speedup = jobs1_seconds / jobs4_seconds
    cores = os.cpu_count() or 1
    data = {
        "kind": "speed",
        "id": "speed",
        "records_per_sec": throughput,
        "records_per_sec_scalar": scalar,
        "records_per_sec_legacy": legacy,
        "kernel_speedup": kernel_speedup,
        "filter_plane_speedup": plane_speedup,
        "kernel_identity": True,
        "sweep_jobs1_seconds": jobs1_seconds,
        "sweep_jobs4_seconds": jobs4_seconds,
        "parallel_speedup_j4": speedup,
        "parallel_identical": True,
        "cpu_count": cores,
        "single_process_reference": REFERENCE,
    }
    publish("speed", _render_speed_text(data), data=data)

    if os.environ.get("REPRO_PERF_GUARD", "").strip() == "1" and records >= 20_000:
        floors = REFERENCE["filter_plane_speedup_floor"]
        for scheme, floor in floors.items():
            required = floor * _GUARD_SLACK
            assert plane_speedup[scheme] >= required, (
                f"perf regression: filter-plane speedup on '{scheme}' is "
                f"{plane_speedup[scheme]:.2f}x, below {required:.2f}x "
                f"(>25% under the {floor:.2f}x reference floor)"
            )
        for scheme, floor in REFERENCE["kernel_speedup_floor"].items():
            required = floor * _GUARD_SLACK
            assert kernel_speedup[scheme] >= required, (
                f"perf regression: epoch-kernel speedup on '{scheme}' is "
                f"{kernel_speedup[scheme]:.2f}x, below {required:.2f}x "
                f"(>25% under the {floor:.2f}x reference floor)"
            )

    if cores >= 4 and records >= 20_000:
        assert speedup >= 2.0, f"expected >=2x at -j 4 on {cores} cores, got {speedup:.2f}x"
