"""Bench: raw simulator throughput and parallel sweep speedup.

Emits ``BENCH_speed.json`` with

* single-process throughput (trace records simulated per second) for the
  no-prefetching baseline and the default EBCP, on both the compressed
  (filter-plane) and the legacy record-by-record execution paths,
* wall-clock time of the same 8-job sweep grid at ``jobs=1`` vs
  ``jobs=4`` and the resulting speedup, and
* bit-identity checks (hard assertions): parallelism and compressed
  execution must never change results.

The parallel-speedup assertion is gated on the machine actually having
cores to fan out to — on a single-core runner ``run_jobs`` now skips the
pool entirely (set ``REPRO_FORCE_POOL=1`` to force it), and the number
is still reported for the record.

Perf-regression guard
---------------------
With ``REPRO_PERF_GUARD=1`` (the CI guard step) the bench fails if the
measured compressed-over-legacy speedup drops more than 25 % below the
frozen reference speedups.  The guard compares *ratios measured within
one run on one machine*, so it is machine-class independent — absolute
records/sec on a laptop and a CI runner differ wildly, but the ratio a
pure-speed optimisation claims must hold everywhere.
"""

from __future__ import annotations

import os
import time

from repro.engine.config import ProcessorConfig
from repro.engine.filter_plane import get_filter_plane
from repro.engine.simulator import EpochSimulator
from repro.parallel import JobSpec, run_jobs
from repro.prefetchers.registry import build_prefetcher
from repro.workloads.registry import COMMERCIAL_WORKLOADS, make_workload

from conftest import publish

#: Frozen reference numbers (ebcp on tpcw at 40 K records, seed 7,
#: best-of-5 on the development machine).  Absolute records/sec are
#: machine-specific; the *speedup ratios* are what the optimisations
#: claim and what the perf guard enforces.
REFERENCE = {
    "pre_optimization_records_per_sec": 48_908,
    "post_optimization_records_per_sec": 57_172,
    "pre_filter_plane_records_per_sec": {"none": 97_977, "ebcp": 58_882},
    #: Compressed / legacy speedup on the same machine and trace — the
    #: machine-independent claim of the filter-plane layer (measured
    #: ~3.4x none / ~1.5x ebcp; floors hold 25 % slack below that).
    "filter_plane_speedup_floor": {"none": 3.0, "ebcp": 1.15},
    "method": "interleaved best-of-N on one machine; guard compares ratios",
}

#: Fraction of the reference speedup that must survive (guard fails on a
#: >25 % regression).
_GUARD_SLACK = 0.75

_SPEED_RECORDS_CAP = 40_000


def _throughput(
    workload: str,
    records: int,
    seed: int,
    scheme: str,
    compressed: bool,
    repeats: int = 5,
):
    """Best-of-N records/sec for one (workload, prefetcher, mode)."""
    trace = make_workload(workload, records=records, seed=seed)
    trace.columns()  # pre-pack so we time the simulator, not the conversion
    config = ProcessorConfig.scaled()
    if compressed:
        # Pre-warm the plane: it is computed once per (trace, L1 geometry)
        # and shared by every run, so it is setup cost, not run cost.
        l1i = (config.l1i.size_bytes, config.l1i.ways, config.line_size)
        l1d = (config.l1d.size_bytes, config.l1d.ways, config.line_size)
        get_filter_plane(trace, l1i, l1d)
    best = float("inf")
    for _ in range(repeats):
        prefetcher = None if scheme == "none" else build_prefetcher(scheme)
        sim = EpochSimulator(
            config, prefetcher, cpi_perf=trace.meta.cpi_perf, overlap=trace.meta.overlap
        )
        start = time.perf_counter()
        sim.run(trace, compressed=compressed)
        best = min(best, time.perf_counter() - start)
    return len(trace) / best


def _sweep_specs(records: int, seed: int) -> "list[JobSpec]":
    config = ProcessorConfig.scaled()
    return [
        JobSpec(
            workload=workload,
            records=records,
            seed=seed,
            config=config,
            prefetcher=None if scheme == "none" else build_prefetcher(scheme),
            label=scheme,
        )
        for workload in COMMERCIAL_WORKLOADS
        for scheme in ("none", "ebcp")
    ]


def test_speed(benchmark, bench_records, bench_seed):
    records = min(bench_records, _SPEED_RECORDS_CAP)

    def run():
        # Warm the trace memo so both timed passes start from equal footing.
        for workload in COMMERCIAL_WORKLOADS:
            make_workload(workload, records=records, seed=bench_seed).columns()

        throughput = {
            scheme: _throughput("tpcw", records, bench_seed, scheme, compressed=True)
            for scheme in ("none", "ebcp")
        }
        legacy = {
            scheme: _throughput("tpcw", records, bench_seed, scheme, compressed=False)
            for scheme in ("none", "ebcp")
        }

        start = time.perf_counter()
        sequential = run_jobs(_sweep_specs(records, bench_seed), jobs=1)
        jobs1_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_jobs(_sweep_specs(records, bench_seed), jobs=4)
        jobs4_seconds = time.perf_counter() - start

        return throughput, legacy, sequential, parallel, jobs1_seconds, jobs4_seconds

    (
        throughput,
        legacy,
        sequential,
        parallel,
        jobs1_seconds,
        jobs4_seconds,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Parallelism must never change results — asserted on every machine.
    assert [r.stats.to_dict() for r in sequential] == [
        r.stats.to_dict() for r in parallel
    ]

    plane_speedup = {s: throughput[s] / legacy[s] for s in throughput}
    speedup = jobs1_seconds / jobs4_seconds
    cores = os.cpu_count() or 1
    lines = [
        "Simulator speed:",
        f"  records/sec (none): {throughput['none']:10.0f}"
        f"  (legacy {legacy['none']:8.0f}, plane speedup {plane_speedup['none']:.2f}x)",
        f"  records/sec (ebcp): {throughput['ebcp']:10.0f}"
        f"  (legacy {legacy['ebcp']:8.0f}, plane speedup {plane_speedup['ebcp']:.2f}x)",
        f"  8-job sweep, jobs=1: {jobs1_seconds:6.2f} s",
        f"  8-job sweep, jobs=4: {jobs4_seconds:6.2f} s  (speedup {speedup:.2f}x "
        f"on {cores} core{'' if cores == 1 else 's'})",
    ]
    publish(
        "speed",
        "\n".join(lines),
        data={
            "kind": "speed",
            "id": "speed",
            "records_per_sec": throughput,
            "records_per_sec_legacy": legacy,
            "filter_plane_speedup": plane_speedup,
            "sweep_jobs1_seconds": jobs1_seconds,
            "sweep_jobs4_seconds": jobs4_seconds,
            "parallel_speedup_j4": speedup,
            "parallel_identical": True,
            "cpu_count": cores,
            "single_process_reference": REFERENCE,
        },
    )

    if os.environ.get("REPRO_PERF_GUARD", "").strip() == "1" and records >= 20_000:
        floors = REFERENCE["filter_plane_speedup_floor"]
        for scheme, floor in floors.items():
            required = floor * _GUARD_SLACK
            assert plane_speedup[scheme] >= required, (
                f"perf regression: filter-plane speedup on '{scheme}' is "
                f"{plane_speedup[scheme]:.2f}x, below {required:.2f}x "
                f"(>25% under the {floor:.2f}x reference floor)"
            )

    if cores >= 4 and records >= 20_000:
        assert speedup >= 2.0, f"expected >=2x at -j 4 on {cores} cores, got {speedup:.2f}x"
