"""Bench: Extension E1 — EBCP on a chip multiprocessor.

The paper's Section 6 future work, quantifying Section 3.3.1: per-thread
stream tracking (possible at EBCP's in-front-of-the-crossbar vantage
point) retains the prefetcher's gains under interleaving, while
thread-blind schemes — any memory-side engine — collapse.
"""

from __future__ import annotations

from repro.experiments import extension_cmp

from conftest import publish


def test_extension_cmp(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: extension_cmp.run(
            records=min(bench_records, 200_000), seed=bench_seed, policy=bench_policy
        ),
        rounds=1,
        iterations=1,
    )
    publish("extension_cmp", result.render(), data=result.to_dict())
    for workload in result.panels:
        # With multiple threads, per-thread tracking clearly beats the
        # thread-blind variants.
        for n_threads in (2, 4):
            per_thread = result.improvement(workload, "ebcp_cmp", n_threads)
            blind = result.improvement(workload, "ebcp_interleaved", n_threads)
            solihin = result.improvement(workload, "solihin_6_1", n_threads)
            assert per_thread > blind, (workload, n_threads)
            assert per_thread > solihin, (workload, n_threads)
        # Interleaving damages the thread-blind schemes more than the
        # per-thread design as threads scale 1 -> 4.
        pt_drop = result.improvement(workload, "ebcp_cmp", 1) - result.improvement(
            workload, "ebcp_cmp", 4
        )
        blind_drop = result.improvement(
            workload, "ebcp_interleaved", 1
        ) - result.improvement(workload, "ebcp_interleaved", 4)
        assert blind_drop > pt_drop - 0.02, workload
