"""Bench: Figure 9 — EBCP vs the other prefetchers."""

from __future__ import annotations

from repro.experiments import figure9
from repro.workloads.registry import COMMERCIAL_WORKLOADS

from conftest import publish


def test_figure9(benchmark, bench_records, bench_seed, bench_policy):
    result = benchmark.pedantic(
        lambda: figure9.run(records=bench_records, seed=bench_seed, policy=bench_policy),
        rounds=1,
        iterations=1,
    )
    publish("figure9", result.render(), data=result.to_dict())
    for workload in COMMERCIAL_WORKLOADS:
        ebcp = result.value(workload, "ebcp")
        # The headline: EBCP significantly outperforms every other scheme.
        for scheme in figure9.SCHEMES:
            if scheme != "ebcp":
                assert ebcp >= result.value(workload, scheme), (workload, scheme)
        # Skipping the un-prefetchable next epoch matters.
        assert ebcp > result.value(workload, "ebcp_minus"), workload
        # Depth beats width for these workloads (Wenisch et al's point).
        assert result.value(workload, "solihin_6_1") >= result.value(
            workload, "solihin_3_2"
        ), workload
