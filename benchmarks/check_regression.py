#!/usr/bin/env python
"""Diff fresh ``results/BENCH_*.json`` against committed baselines.

The benches publish machine-readable JSON next to their rendered text
(:func:`conftest.publish`).  This checker compares those payloads
against the snapshots committed under ``benchmarks/baselines/`` and
exits non-zero when a tracked metric regresses beyond its tolerance —
the CI tripwire for "this PR quietly made the simulator slower or the
reproduction less faithful".

Metric classes and their tolerances:

* **Ratio metrics** (warm-over-cold speedup, filter-plane speedup,
  tracing overhead) are machine-*independent* enough to compare across
  runners, but timing-derived, so they get generous tolerances —
  a drop must be large to trip.
* **Deterministic metrics** (figure series, table cells, calibration
  errors) depend only on (records, seed), so they are compared tightly;
  any visible drift means the simulation itself changed.

A baseline is only compared when its ``records``/``seed`` stamp matches
the fresh run — a quick local pass at different scale skips instead of
false-alarming.

Usage::

    python check_regression.py                # compare, exit 1 on regression
    python check_regression.py --update       # bless current results
    python check_regression.py --list         # show tracked metrics
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

HERE = Path(__file__).resolve().parent
RESULTS_DIR = HERE / "results"
BASELINES_DIR = HERE / "baselines"

#: Timing-derived ratios: allowed fractional drop (min_ratio) or rise
#: (max_ratio) before tripping.
RATIO_METRICS: Dict[str, List[Tuple[Tuple[str, ...], str, float]]] = {
    "service": [
        (("warm_over_cold_speedup",), "min_ratio", 0.70),
        (("trace_overhead_ratio",), "max_ratio", 0.50),
        (("sustained_warm_rps",), "min_ratio", 0.70),
        # Sharded tier: 4-vs-1-worker cache-miss throughput (cpu-count
        # sensitive, hence the generous floor) and the router's warm-hit
        # overhead vs the single-process service.
        (("scaling_throughput_ratio_4w",), "min_ratio", 0.60),
        (("sharded_warm_over_single_ratio",), "max_ratio", 0.50),
        # Supervisor crash recovery: time-to-ready after a shard kill
        # and the client-visible error window.  Dominated by process
        # fork + pool boot, so very runner-sensitive — the tolerance
        # only trips on a multiple, not a wobble.
        (("recovery_ready_s",), "max_ratio", 1.00),
        (("recovery_error_window_s",), "max_ratio", 1.00),
    ],
    "speed": [
        (("filter_plane_speedup", "none"), "min_ratio", 0.25),
        (("filter_plane_speedup", "ebcp"), "min_ratio", 0.25),
        (("kernel_speedup", "ebcp"), "min_ratio", 0.25),
    ],
}

#: Two-sided relative tolerance for deterministic payload kinds.
MATCH_TOLERANCE = {"figure": 0.02, "table": 0.02, "calibration": 0.01}


@dataclass
class Comparison:
    bench: str
    metric: str
    baseline: float
    current: float
    mode: str
    tolerance: float

    @property
    def ok(self) -> bool:
        if self.mode == "min_ratio":
            return self.current >= self.baseline * (1.0 - self.tolerance)
        if self.mode == "max_ratio":
            return self.current <= self.baseline * (1.0 + self.tolerance)
        # match: two-sided relative (with an absolute floor for values
        # near zero, e.g. a 0.0% improvement cell).
        slack = self.tolerance * max(abs(self.baseline), 0.05)
        return abs(self.current - self.baseline) <= slack

    def render(self) -> str:
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"  [{verdict:>10s}] {self.bench}:{self.metric}  "
            f"baseline {self.baseline:.4g}  current {self.current:.4g}  "
            f"({self.mode}, tol {self.tolerance:.0%})"
        )


def _dig(payload: dict, path: Tuple[str, ...]) -> Optional[float]:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _as_number(cell: object) -> Optional[float]:
    """Numeric cell value; table renders store formatted strings."""
    if isinstance(cell, bool):
        return None
    if isinstance(cell, (int, float)):
        return float(cell)
    if isinstance(cell, str):
        try:
            return float(cell.rstrip("%x"))
        except ValueError:
            return None
    return None


def _deterministic_metrics(payload: dict) -> Iterator[Tuple[str, float]]:
    """Flatten a figure/table/calibration payload into named numbers."""
    kind = payload.get("kind")
    if kind == "figure":
        for workload, values in sorted(payload.get("series", {}).items()):
            for x, value in zip(payload.get("x_values", []), values):
                if isinstance(value, (int, float)):
                    yield f"{workload}[{x}]", float(value)
    elif kind == "table":
        headers = payload.get("headers", [])
        for row in payload.get("rows", []):
            label = row[0] if row else "?"
            for header, cell in zip(headers[1:], row[1:]):
                value = _as_number(cell)
                if value is not None:
                    yield f"{label}/{header}", value
    elif kind == "calibration":
        for entry in payload.get("errors", []):
            workload = entry.get("workload", "?")
            for field, value in sorted(entry.items()):
                if field != "workload" and isinstance(value, (int, float)):
                    yield f"{workload}/{field}", float(value)


def compare_bench(name: str, baseline: dict, current: dict) -> Tuple[List[Comparison], Optional[str]]:
    """All tracked comparisons for one bench, or a reason to skip."""
    for stamp in ("records", "seed"):
        if baseline.get(stamp) != current.get(stamp):
            return [], (
                f"{stamp} differs (baseline {baseline.get(stamp)}, "
                f"current {current.get(stamp)}) — not comparable"
            )
    comparisons: List[Comparison] = []
    for path, mode, tolerance in RATIO_METRICS.get(name, []):
        base_value = _dig(baseline, path)
        cur_value = _dig(current, path)
        if base_value is None or cur_value is None:
            continue
        comparisons.append(
            Comparison(name, ".".join(path), base_value, cur_value, mode, tolerance)
        )
    kind = current.get("kind")
    if kind in MATCH_TOLERANCE:
        tolerance = MATCH_TOLERANCE[kind]
        base_metrics = dict(_deterministic_metrics(baseline))
        for metric, cur_value in _deterministic_metrics(current):
            if metric in base_metrics:
                comparisons.append(
                    Comparison(name, metric, base_metrics[metric], cur_value,
                               "match", tolerance)
                )
    return comparisons, None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=RESULTS_DIR,
                        help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baselines", type=Path, default=BASELINES_DIR,
                        help="directory holding committed baselines")
    parser.add_argument("--update", action="store_true",
                        help="bless the fresh results as the new baselines")
    parser.add_argument("--list", action="store_true",
                        help="print tracked metrics and exit")
    args = parser.parse_args(argv)

    if args.list:
        for bench, metrics in sorted(RATIO_METRICS.items()):
            for path, mode, tolerance in metrics:
                print(f"{bench}: {'.'.join(path)}  ({mode}, tol {tolerance:.0%})")
        for kind, tolerance in sorted(MATCH_TOLERANCE.items()):
            print(f"<kind={kind}>: all numeric cells  (match, tol {tolerance:.0%})")
        return 0

    fresh = sorted(args.results.glob("BENCH_*.json"))
    if args.update:
        args.baselines.mkdir(parents=True, exist_ok=True)
        for path in fresh:
            shutil.copy2(path, args.baselines / path.name)
            print(f"blessed {path.name}")
        return 0

    failures = 0
    compared = 0
    for baseline_path in sorted(args.baselines.glob("BENCH_*.json")):
        name = baseline_path.stem[len("BENCH_"):]
        current_path = args.results / baseline_path.name
        if not current_path.exists():
            print(f"~ {name}: no fresh result, skipped")
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        comparisons, skip = compare_bench(name, baseline, current)
        if skip:
            print(f"~ {name}: {skip}, skipped")
            continue
        if not comparisons:
            print(f"~ {name}: no tracked metrics")
            continue
        print(f"{name}:")
        for comparison in comparisons:
            print(comparison.render())
            compared += 1
            if not comparison.ok:
                failures += 1

    if compared == 0:
        print("no baselines were comparable — run the benches first "
              "(or --update to create baselines)")
        return 2
    if failures:
        print(f"\n{failures} metric(s) regressed beyond tolerance")
        return 1
    print(f"\nall {compared} tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
