#!/usr/bin/env python3
"""Inspect a simulation through the observability layer.

Runs one (workload, prefetcher) pair with the event bus attached, then
answers questions the aggregate statistics cannot: how are misses
clustered into epochs, how timely are the prefetches (the skip-2 margin),
and where does read-bus pressure concentrate?  Finally writes the three
export formats next to this script's working directory.

Usage:  python examples/trace_inspection.py [workload] [prefetcher]
"""

from __future__ import annotations

import sys

from repro import EpochSimulator, ProcessorConfig, build_prefetcher, make_workload
from repro.obs import (
    ChromeTraceExporter,
    EpochClosed,
    EventBus,
    JsonlTraceWriter,
    PrefetchHit,
    RunManifest,
    SimulationMetrics,
)

RECORDS = 50_000
SEED = 7


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    prefetcher_name = sys.argv[2] if len(sys.argv) > 2 else "ebcp"

    bus = EventBus()
    metrics = SimulationMetrics(bus)
    chrome = ChromeTraceExporter(bus)
    manifest = RunManifest(workload, prefetcher_name, RECORDS, SEED)
    manifest.count_events(bus)

    # Ad-hoc subscribers work alongside the canned collectors: find the
    # biggest epoch and the earliest-issued useful prefetch on the fly.
    biggest: list[EpochClosed] = []
    best_lead: list[PrefetchHit] = []

    def watch_epoch(event: EpochClosed) -> None:
        if not biggest or event.n_misses > biggest[0].n_misses:
            biggest[:] = [event]

    def watch_hit(event: PrefetchHit) -> None:
        if event.lead_epochs >= 0 and (
            not best_lead or event.lead_epochs > best_lead[0].lead_epochs
        ):
            best_lead[:] = [event]

    bus.subscribe(EpochClosed, watch_epoch)
    bus.subscribe(PrefetchHit, watch_hit)

    trace = make_workload(workload, records=RECORDS, seed=SEED)
    sim = EpochSimulator(
        ProcessorConfig.scaled(),
        build_prefetcher(prefetcher_name),
        cpi_perf=trace.meta.cpi_perf,
        overlap=trace.meta.overlap,
        bus=bus,
    )
    with manifest.phase("simulate"), JsonlTraceWriter("events.jsonl", bus):
        result = sim.run(trace, warmup_records=0)
    manifest.record_result(result.to_dict())

    print(f"{workload} / {prefetcher_name}: CPI {result.cpi:.3f}, "
          f"{result.stats.epochs} epochs\n")

    misses = metrics.epoch_misses
    print("miss clustering (misses per epoch == per-epoch MLP):")
    for bound, count in zip(misses.bounds, misses.counts):
        bar = "#" * round(60 * count / max(1, misses.total))
        print(f"  <= {bound:3g}  {count:6d}  {bar}")
    print(f"  mean {misses.mean:.2f}, p90 {misses.quantile(0.9):g}, "
          f"overflow {misses.overflow}\n")

    lead = metrics.lead_epochs
    if lead.total:
        print(f"prefetch timeliness: {lead.total} hits with known lead, "
              f"mean lead {lead.mean:.1f} epochs (skip-2 target: 2), "
              f"p50 {lead.quantile(0.5):g}")
    if biggest:
        e = biggest[0]
        print(f"largest epoch: #{e.index} with {e.n_misses} overlapped misses "
              f"over {e.duration_cycles:.0f} cycles")
    if best_lead:
        h = best_lead[0]
        print(f"earliest useful prefetch: line {h.line:#x} staged "
              f"{h.lead_epochs} epochs before use ({h.source})")
    utilization = metrics.read_utilization
    print(f"read-bus windows over 90% occupancy: "
          f"{utilization.counts[-2] + utilization.counts[-1] + utilization.overflow} "
          f"of {utilization.total}\n")

    chrome.write("trace.json")
    manifest.write("manifest.json")
    print("wrote events.jsonl, trace.json (open in ui.perfetto.dev), manifest.json")


if __name__ == "__main__":
    main()
