#!/usr/bin/env python3
"""Bandwidth sensitivity: Figure 8 in miniature.

Shows the paper's key capacity/bandwidth trade-off: with ample memory
bandwidth the prefetch degree can be cranked up, but on a constrained
bus an aggressive degree *hurts* — dropped prefetches waste the budget
and sustained saturation queues everyone, demand included.

Usage:  python examples/bandwidth_sensitivity.py [workload] [records]
"""

from __future__ import annotations

import sys

from repro import EpochSimulator, ProcessorConfig, make_workload
from repro.analysis.reporting import format_series
from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher

BANDWIDTHS = ((9.6, 4.8), (6.4, 3.2), (3.2, 1.6))
DEGREES = (2, 4, 8, 16, 32)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 140_000

    trace = make_workload(workload, records=records)
    timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}

    series = {}
    for read_gbps, write_gbps in BANDWIDTHS:
        config = ProcessorConfig.scaled().replace(
            prefetch_buffer_entries=1024,
            read_bw_gbps=read_gbps,
            write_bw_gbps=write_gbps,
        )
        baseline = EpochSimulator(config, None, **timing).run(trace)
        points = []
        for degree in DEGREES:
            pf = EpochBasedCorrelationPrefetcher(
                EBCPConfig.idealized(prefetch_degree=degree)
            )
            result = EpochSimulator(config, pf, **timing).run(trace)
            points.append(result.improvement_over(baseline))
        series[f"{read_gbps:g} GB/s read"] = points

    print(
        format_series(
            "degree",
            DEGREES,
            series,
            title=f"EBCP improvement vs degree at three memory bandwidths — {workload}",
        )
    )
    print("\nNote how the optimal degree shrinks as bandwidth does "
          "(paper Figure 8).")


if __name__ == "__main__":
    main()
