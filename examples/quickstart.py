#!/usr/bin/env python3
"""Quickstart: simulate the database workload with and without EBCP.

Runs the no-prefetching baseline and the tuned epoch-based correlation
prefetcher (degree 8, 64-entry prefetch buffer, main-memory table) on the
synthetic OLTP workload, then prints the paper's primary and secondary
metrics.

Usage:  python examples/quickstart.py [records]
"""

from __future__ import annotations

import sys

from repro import EpochSimulator, ProcessorConfig, build_prefetcher, make_workload


def main() -> None:
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 160_000

    # 1. Build a deterministic synthetic trace of the OLTP workload.
    trace = make_workload("database", records=records)
    print(f"workload: {trace.meta.name} — {trace.meta.description}")
    print(f"  {len(trace):,} records spanning {trace.instructions:,} instructions,")
    print(f"  {trace.unique_lines():,} distinct cache lines\n")

    # 2. The scaled default processor (Section 4.4 of the paper, with the
    #    L2 and footprints scaled 8x down — see DESIGN.md).
    config = ProcessorConfig.scaled()
    timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}

    # 3. Baseline: no prefetching (the paper's Table 1 row).
    baseline = EpochSimulator(config, None, **timing).run(trace)
    print("baseline (no prefetching):")
    print(f"  CPI                 {baseline.cpi:6.2f}")
    print(f"  epochs / 1k inst    {baseline.epochs_per_kilo_inst:6.2f}")
    print(f"  L2 I-miss / 1k inst {baseline.l2_inst_miss_rate:6.2f}")
    print(f"  L2 L-miss / 1k inst {baseline.l2_load_miss_rate:6.2f}\n")

    # 4. The epoch-based correlation prefetcher, tuned configuration.
    ebcp = build_prefetcher("ebcp")  # degree 8, 128 K-entry in-memory table
    result = EpochSimulator(config, ebcp, **timing).run(trace)
    print("EBCP (tuned: degree 8, main-memory correlation table):")
    print(f"  CPI                 {result.cpi:6.2f}")
    print(f"  coverage            {result.coverage:6.1%}")
    print(f"  accuracy            {result.accuracy:6.1%}")
    print(f"  EPI reduction       {result.epi_reduction_over(baseline):6.1%}")
    print(f"  improvement         {result.improvement_over(baseline):+6.1%}")
    print(f"\n  on-chip state       {ebcp.onchip_storage_bytes:,} B")
    print(f"  main-memory table   {ebcp.memory_table_bytes // 1024:,} KiB")


if __name__ == "__main__":
    main()
