#!/usr/bin/env python3
"""Design-space exploration: sweep EBCP's three knobs on one workload.

Mirrors the paper's Section 5.2 methodology in miniature: start from an
idealized predictor, then sweep (a) prefetch degree, (b) correlation
table entries, (c) prefetch-buffer entries, and watch where the knees
fall.  Full-suite versions of these sweeps are Figures 4, 6 and 7
(``benchmarks/bench_figure{4,6,7}.py``).

Usage:  python examples/design_space_exploration.py [workload] [records]
"""

from __future__ import annotations

import sys

from repro import EpochSimulator, ProcessorConfig, make_workload
from repro.analysis.reporting import format_table
from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "specjbb2005"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 140_000

    trace = make_workload(workload, records=records)
    timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}

    def improvement(config: ProcessorConfig, prefetcher) -> float:
        base = EpochSimulator(config, None, **timing).run(trace)
        result = EpochSimulator(config, prefetcher, **timing).run(trace)
        return result.improvement_over(base)

    # --- (a) prefetch degree, idealized table and buffer ---------------
    ideal = ProcessorConfig.scaled().replace(prefetch_buffer_entries=1024)
    degree_rows = []
    for degree in (1, 2, 4, 8, 16, 32):
        pf = EpochBasedCorrelationPrefetcher(EBCPConfig.idealized(prefetch_degree=degree))
        degree_rows.append([degree, f"{improvement(ideal, pf):+.1%}"])
    print(format_table(["degree", "improvement"], degree_rows,
                       title=f"(a) prefetch degree — {workload}"))
    print()

    # --- (b) correlation-table entries, degree 8 ------------------------
    default = ProcessorConfig.scaled()
    table_rows = []
    for entries in (1024, 8 * 1024, 32 * 1024, 128 * 1024):
        pf = EpochBasedCorrelationPrefetcher(
            EBCPConfig(prefetch_degree=8, table_entries=entries)
        )
        table_rows.append(
            [entries, f"{entries * 64 // 1024} KiB", f"{improvement(default, pf):+.1%}"]
        )
    print(format_table(["entries", "memory", "improvement"], table_rows,
                       title="(b) correlation-table entries (main memory)"))
    print()

    # --- (c) prefetch-buffer entries, degree 8 --------------------------
    buffer_rows = []
    for entries in (16, 64, 256):
        config = ProcessorConfig.scaled().replace(prefetch_buffer_entries=entries)
        pf = EpochBasedCorrelationPrefetcher(EBCPConfig(prefetch_degree=8))
        buffer_rows.append(
            [entries, f"{entries * 8} B on-chip", f"{improvement(config, pf):+.1%}"]
        )
    print(format_table(["entries", "cost", "improvement"], buffer_rows,
                       title="(c) prefetch-buffer entries"))


if __name__ == "__main__":
    main()
