#!/usr/bin/env python3
"""Prefetcher shoot-out: Figure 9 in miniature on one workload.

Runs every prefetching scheme of the paper's comparison — GHB PC/DC
(small/large), the Tag Correlating Prefetcher (small/large), a stream
prefetcher, Spatial Memory Streaming, Solihin's memory-side schemes and
EBCP (plus its handicapped minus variant) — on one workload and prints
improvement, coverage, accuracy and storage cost.

Usage:  python examples/prefetcher_shootout.py [workload] [records]
"""

from __future__ import annotations

import sys

from repro import EpochSimulator, ProcessorConfig, make_workload
from repro.analysis.reporting import format_table
from repro.experiments.figure9 import SCHEMES, build_comparison_prefetcher


def human_bytes(n: int) -> str:
    if n == 0:
        return "-"
    if n < 1024:
        return f"{n} B"
    if n < 1024 * 1024:
        return f"{n // 1024} KiB"
    return f"{n / (1024 * 1024):.1f} MiB"


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 140_000

    trace = make_workload(workload, records=records)
    config = ProcessorConfig.scaled()
    timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
    baseline = EpochSimulator(config, None, **timing).run(trace)
    print(f"{workload}: baseline CPI {baseline.cpi:.2f} "
          f"({baseline.epochs_per_kilo_inst:.2f} epochs/1k inst)\n")

    rows = []
    for scheme in SCHEMES:
        prefetcher = build_comparison_prefetcher(scheme)
        result = EpochSimulator(config, prefetcher, **timing).run(trace)
        rows.append(
            [
                scheme,
                f"{result.improvement_over(baseline):+.1%}",
                f"{result.coverage:.1%}",
                f"{result.accuracy:.1%}",
                human_bytes(prefetcher.onchip_storage_bytes),
                human_bytes(prefetcher.memory_table_bytes),
            ]
        )
    print(
        format_table(
            ["scheme", "improvement", "coverage", "accuracy", "on-chip", "in-memory"],
            rows,
            title="Prefetcher comparison (uniform degree 6, 64-entry prefetch buffer)",
        )
    )


if __name__ == "__main__":
    main()
