#!/usr/bin/env python3
"""Walk through the paper's Section 3 example A..I on the real simulator.

The paper explains EBCP with a miss sequence A..I grouped into epochs
(A,B)(C,D,E)(F,G)(H,I).  This script replays that exact sequence through
the simulator under three schemes and prints, letter by letter, whether
each access missed or was averted — reproducing the paper's tables:

* no prefetching      -> 4 epochs, all nine letters miss;
* EBCP (memory table) -> F, G, H, I averted; 2 epochs remain;
* Solihin's scheme    -> only a late-epoch miss (H/I) averted; 4 epochs.

Usage:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro.core.prefetcher import EBCPConfig, EpochBasedCorrelationPrefetcher
from repro.engine.config import CacheConfig, ProcessorConfig
from repro.engine.simulator import EpochSimulator
from repro.memory.hierarchy import AccessOutcome
from repro.obs import AccessResolved, EventBus
from repro.prefetchers.solihin import SolihinPrefetcher
from repro.workloads.synthetic import PAPER_EXAMPLE_EPOCHS, paper_example_trace

ITERATIONS = 16
EVICT_LINES = 600


def small_config() -> ProcessorConfig:
    """A small hierarchy so the example's eviction phase stays short."""
    return ProcessorConfig(
        l1i=CacheConfig(4 * 1024, 4, 64, 3),
        l1d=CacheConfig(4 * 1024, 4, 64, 3),
        l2=CacheConfig(16 * 1024, 4, 64, 20),
        cpi_perf=1.0,
        overlap=0.0,
    )


def run(prefetcher, label: str) -> None:
    trace = paper_example_trace(iterations=ITERATIONS, eviction_lines=EVICT_LINES)
    letters = trace.meta.extra["letters"]
    line_to_letter = {addr >> 6: letter for letter, addr in letters.items()}

    bus = EventBus()
    sim = EpochSimulator(small_config(), prefetcher, bus=bus)
    outcomes: list[tuple[str, AccessOutcome]] = []
    state = {"flushed": True}

    def on_access(event: AccessResolved) -> None:
        if event.line in line_to_letter:
            outcomes.append((line_to_letter[event.line], event.result.outcome))
            state["flushed"] = False
        elif not state["flushed"]:
            # The paper treats each recurrence in isolation: leftover
            # prefetches do not survive the long gap to the next one.
            sim.hierarchy.prefetch_buffer.flush()
            state["flushed"] = True

    bus.subscribe(AccessResolved, on_access)
    sim.run(trace, warmup_records=0)

    final = outcomes[-9:]
    print(f"{label}:")
    print("  epoch groups:", "  ".join(",".join(ep) for ep in PAPER_EXAMPLE_EPOCHS))
    rendered = []
    for letter, outcome in final:
        mark = "averted" if outcome is AccessOutcome.PREFETCH_HIT else "MISS"
        rendered.append(f"{letter}:{mark}")
    print("  steady state: ", "  ".join(rendered))
    remaining = sum(1 for _, o in final if o is not AccessOutcome.PREFETCH_HIT)
    print(f"  remaining misses per recurrence: {remaining} of 9\n")


def main() -> None:
    print(__doc__)
    run(None, "No prefetching (paper Section 3.1 baseline)")
    run(
        EpochBasedCorrelationPrefetcher(
            EBCPConfig(prefetch_degree=8, table_entries=64 * 1024)
        ),
        "EBCP with main-memory correlation table (Section 3.2)",
    )
    run(
        SolihinPrefetcher(depth=3, width=2, table_entries=64 * 1024, degree=6),
        "Solihin's memory-side prefetcher (Section 3.3.1)",
    )


if __name__ == "__main__":
    main()
