#!/usr/bin/env python3
"""CMP extension: why prefetcher *placement* matters on multicores.

Interleaves several independent instances of a workload — the combined
request stream a shared L2 observes — and compares:

* per-thread EBCP (the paper's Section 6 future work: one EMAB per
  hardware thread in front of the crossbar, shared in-memory table);
* the same algorithm thread-blind (a single EMAB over the union stream);
* Solihin's memory-side scheme, which is inherently thread-blind.

Paper, Section 3.3.1: "interleaved request streams do not exhibit
sufficient correlation to enable effective prefetching."

Usage:  python examples/cmp_interleaving.py [workload] [max_threads]
"""

from __future__ import annotations

import sys

from repro import EpochSimulator, ProcessorConfig
from repro.analysis.reporting import format_series
from repro.core.cmp import CMPEBCPConfig, InterleavedStreamEBCP, PerThreadEpochPrefetcher
from repro.core.prefetcher import EBCPConfig
from repro.prefetchers.solihin import make_solihin_6_1
from repro.workloads.multithread import make_cmp_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    max_threads = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    thread_counts = [t for t in (1, 2, 4, 8) if t <= max_threads]

    config = ProcessorConfig.scaled()
    series = {"ebcp per-thread": [], "ebcp thread-blind": [], "solihin 6,1": []}
    for n_threads in thread_counts:
        trace = make_cmp_workload(
            workload, n_threads=n_threads, records_per_thread=140_000 // n_threads
        )
        timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
        baseline = EpochSimulator(config, None, **timing).run(trace)

        schemes = {
            "ebcp per-thread": PerThreadEpochPrefetcher(
                CMPEBCPConfig(EBCPConfig(prefetch_degree=8))
            ),
            "ebcp thread-blind": InterleavedStreamEBCP(
                CMPEBCPConfig(EBCPConfig(prefetch_degree=8))
            ),
            "solihin 6,1": make_solihin_6_1(degree=8),
        }
        for label, prefetcher in schemes.items():
            result = EpochSimulator(config, prefetcher, **timing).run(trace)
            series[label].append(result.improvement_over(baseline))

    print(
        format_series(
            "threads",
            thread_counts,
            series,
            title=f"Improvement vs thread count — {workload} "
            "(total work held constant)",
        )
    )


if __name__ == "__main__":
    main()
