#!/usr/bin/env python3
"""Build a custom workload from transaction templates and simulate it.

Demonstrates the workload-construction API: regions, ops, transaction
templates, and the trace builder — the same machinery behind the four
commercial workload models.  The custom workload here is a miniature
"key-value store": a hash probe (one chase hop), a bucket walk (chase),
a value read (spatial burst within a page) and logging (stores), with
two transaction types whose order mostly alternates.

Usage:  python examples/custom_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import EpochSimulator, ProcessorConfig, build_prefetcher
from repro.workloads.patterns import RegionAllocator, spatial_page_lines
from repro.workloads.templates import Op, TransactionTemplate
from repro.workloads.trace import TraceBuilder, TraceMeta


def build_kv_trace(records: int = 80_000, seed: int = 11):
    rng = np.random.default_rng(seed)
    alloc = RegionAllocator(base=0x4000_0000)
    code = alloc.allocate("code", 2048)
    table = alloc.allocate("hash_table", 1 << 22)  # sparse heap
    values = alloc.allocate("values", 1 << 22)
    log = alloc.allocate("log", 4096)

    templates = []
    for t in range(400):
        pc = 0x0900_0000 + t * 0x1000
        start = int(rng.integers(0, code.lines - 4))
        ops = [
            # Request dispatch: a couple of instruction-miss lines.
            Op("code", pc=pc, addrs=tuple(code.sequential_lines(start, 2)), step_gap=40),
            # Hash probe -> bucket walk: a dependent chain.
            Op("chase", pc=pc + 16, addrs=tuple(table.sample_lines(rng, 3))),
            # Value read: several lines of one page, overlapping.
            Op("burst", pc=pc + 32, addrs=tuple(spatial_page_lines(values, rng, 4))),
            # Write-ahead log append.
            Op("store", pc=pc + 48, addrs=tuple(log.sample_lines(rng, 2, distinct=False))),
        ]
        template = TransactionTemplate(template_id=t, ops=ops, name=f"kv-{t}")
        template.tail_pad = max(0, 1500 - template.instruction_cost())
        templates.append(template)

    meta = TraceMeta(name="kv_store", seed=seed, cpi_perf=1.1, overlap=0.1)
    builder = TraceBuilder(meta)
    current = 0
    while len(builder) < records:
        templates[current].emit(builder, rng, variant_prob=0.0, cold_region=None)
        # Mostly sequential transaction order with occasional jumps.
        if rng.random() < 0.8:
            current = (current + 1) % len(templates)
        else:
            current = int(rng.integers(0, len(templates)))
    trace = builder.build()
    return trace.slice(0, records)


def main() -> None:
    trace = build_kv_trace()
    print(f"custom workload: {len(trace):,} records, "
          f"{trace.unique_lines():,} distinct lines\n")

    config = ProcessorConfig.scaled()
    timing = {"cpi_perf": trace.meta.cpi_perf, "overlap": trace.meta.overlap}
    baseline = EpochSimulator(config, None, **timing).run(trace)
    print(f"baseline:  CPI {baseline.cpi:.2f}  "
          f"epochs/1k {baseline.epochs_per_kilo_inst:.2f}")

    for name in ("stream", "ghb_large", "solihin_6_1", "ebcp"):
        result = EpochSimulator(config, build_prefetcher(name), **timing).run(trace)
        print(f"{name:12s} improvement {result.improvement_over(baseline):+6.1%}  "
              f"coverage {result.coverage:5.1%}  accuracy {result.accuracy:5.1%}")


if __name__ == "__main__":
    main()
